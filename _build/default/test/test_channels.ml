(* End-to-end DTU channel tests: the Figure 3 scenario. Two VPEs
   establish a communication channel through the kernel (gate creation,
   delegation, endpoint activation) and then exchange messages with no
   kernel involvement; revoking the gate cuts the channel off in
   hardware (NoC-level isolation). *)

open Semperos

let check = Alcotest.check

let sel_of = function
  | Protocol.R_sel s -> s
  | r -> Alcotest.failf "expected selector, got %a" Protocol.pp_reply r

let expect_ok = function
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "expected ok, got %a" Protocol.pp_reply r

(* Build the channel of Figure 3, sequence B: receiver in group 0,
   sender in group 1. Returns (sys, sender, receiver, sender's sgate
   selector). *)
let establish_channel () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:4 ()) in
  let receiver = System.spawn_vpe sys ~kernel:0 in
  let sender = System.spawn_vpe sys ~kernel:1 in
  (* B.1-B.2: the receiver sets up its receive gate and activates an
     endpoint for it. *)
  let rgate =
    sel_of (System.syscall_sync sys receiver (Protocol.Sys_create_rgate { ep = 2; slots = 8 }))
  in
  expect_ok (System.syscall_sync sys receiver (Protocol.Sys_activate { sel = rgate; ep = 2 }));
  (* B.3-B.5: a send gate derived from it travels to the sender's group. *)
  let sgate =
    sel_of
      (System.syscall_sync sys receiver (Protocol.Sys_create_sgate { rgate; label = 42 }))
  in
  expect_ok
    (System.syscall_sync sys receiver
       (Protocol.Sys_delegate_to { recv_vpe = sender.Vpe.id; sel = sgate }));
  let sender_sgate = 0 in
  (* B.6: the sender activates its send endpoint. *)
  expect_ok (System.syscall_sync sys sender (Protocol.Sys_activate { sel = sender_sgate; ep = 3 }));
  (sys, sender, receiver, sender_sgate)

let send_one sys (sender : Vpe.t) payload =
  let dtu = Dtu.find (System.grid sys) ~pe:sender.Vpe.pe in
  let r = Dtu.send dtu ~ep:3 ~bytes:64 ~payload:(Message.Raw payload) in
  ignore (System.run sys);
  r

let test_channel_end_to_end () =
  let sys, sender, receiver, _ = establish_channel () in
  let k0_syscalls_before = (Kernel.stats (System.kernel sys 0)).Kernel.syscalls in
  (match send_one sys sender "hello" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send failed: %s" (Dtu.error_to_string e));
  (* The message arrived at the receiver's inbox... *)
  check Alcotest.int "one message" 1 (Queue.length receiver.Vpe.inbox);
  (match Queue.peek_opt receiver.Vpe.inbox with
  | Some m -> (
    match m.Message.payload with
    | Message.Raw s -> check Alcotest.string "payload" "hello" s
    | _ -> Alcotest.fail "wrong payload")
  | None -> Alcotest.fail "no message");
  (* ... and the kernels were not involved ("the communication via the
     created channel does not involve the kernel anymore"). *)
  check Alcotest.int "no kernel involvement" k0_syscalls_before
    (Kernel.stats (System.kernel sys 0)).Kernel.syscalls

let test_channel_credits_flow () =
  let sys, sender, receiver, _ = establish_channel () in
  (* Send until credits are gone; ack to restore. *)
  let sent = ref 0 in
  let rec blast () =
    match send_one sys sender (string_of_int !sent) with
    | Ok () ->
      incr sent;
      blast ()
    | Error Dtu.No_credits -> ()
    | Error e -> Alcotest.failf "send: %s" (Dtu.error_to_string e)
  in
  blast ();
  check Alcotest.bool "several messages before credit exhaustion" true (!sent >= 8);
  check Alcotest.int "all delivered" !sent (Queue.length receiver.Vpe.inbox);
  (* Acknowledge one and the channel accepts again. *)
  Dtu.ack (System.grid sys) (Queue.pop receiver.Vpe.inbox);
  (match send_one sys sender "more" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send after ack: %s" (Dtu.error_to_string e))

let test_revoke_cuts_channel () =
  let sys, sender, receiver, _sender_sgate = establish_channel () in
  (match send_one sys sender "before" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" (Dtu.error_to_string e));
  (* The receiver revokes the send-gate tree (its sgate and the
     sender's delegated copy). The kernel must invalidate the sender's
     activated endpoint: NoC-level isolation. *)
  let rgate_sel = 0 in
  expect_ok
    (System.syscall_sync sys receiver (Protocol.Sys_revoke { sel = rgate_sel; own = false }));
  (match send_one sys sender "after" with
  | Ok () -> Alcotest.fail "send succeeded through a revoked gate"
  | Error Dtu.Wrong_kind -> () (* endpoint invalidated *)
  | Error e -> Alcotest.failf "unexpected error: %s" (Dtu.error_to_string e));
  check Alcotest.int "only the first message arrived" 1 (Queue.length receiver.Vpe.inbox);
  Audit.check sys

let test_memory_endpoint_revoked () =
  (* The same enforcement for memory capabilities: after revoke, the
     activated memory endpoint stops working. *)
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:4 ()) in
  let owner = System.spawn_vpe sys ~kernel:0 in
  let borrower = System.spawn_vpe sys ~kernel:1 in
  let mem =
    sel_of (System.syscall_sync sys owner (Protocol.Sys_alloc_mem { size = 8192L; perms = Perms.rw }))
  in
  let b_sel =
    sel_of
      (System.syscall_sync sys borrower
         (Protocol.Sys_obtain_from { donor_vpe = owner.Vpe.id; donor_sel = mem }))
  in
  expect_ok (System.syscall_sync sys borrower (Protocol.Sys_activate { sel = b_sel; ep = 5 }));
  let dtu = Dtu.find (System.grid sys) ~pe:borrower.Vpe.pe in
  let read_ok = ref false in
  (match Dtu.read dtu ~ep:5 ~offset:0L ~bytes:256 (fun () -> read_ok := true) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "read: %s" (Dtu.error_to_string e));
  ignore (System.run sys);
  check Alcotest.bool "read before revoke" true !read_ok;
  expect_ok (System.syscall_sync sys owner (Protocol.Sys_revoke { sel = mem; own = true }));
  (match Dtu.read dtu ~ep:5 ~offset:0L ~bytes:256 (fun () -> ()) with
  | Ok () -> Alcotest.fail "read succeeded through a revoked memory capability"
  | Error Dtu.Wrong_kind -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Dtu.error_to_string e))

let suite =
  [
    Alcotest.test_case "channel end to end (Figure 3)" `Quick test_channel_end_to_end;
    Alcotest.test_case "channel credit flow" `Quick test_channel_credits_flow;
    Alcotest.test_case "revoke cuts the channel" `Quick test_revoke_cuts_channel;
    Alcotest.test_case "revoke cuts memory endpoints" `Quick test_memory_endpoint_revoked;
  ]
