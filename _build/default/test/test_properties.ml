(* Cross-cutting property tests: equivalences and invariants that must
   hold over randomised inputs — revocation-mode equivalence, migration
   under load, metamorphic trace properties, latency monotonicity. *)

open Semperos

let qcheck = QCheck_alcotest.to_alcotest

let sel_of = function
  | Protocol.R_sel s -> s
  | r -> Alcotest.failf "expected selector, got %a" Protocol.pp_reply r

(* Batched and unbatched revocation delete exactly the same capability
   set on a random tree shape. *)
let prop_batching_equivalence =
  QCheck.Test.make ~name:"batching revokes the same set" ~count:25
    QCheck.(pair (int_bound 1000000) (int_bound 20))
    (fun (seed, children) ->
      let run batching =
        let sys =
          System.create (System.config ~kernels:4 ~user_pes_per_kernel:(children + 3) ~batching ())
        in
        let rng = Rng.create (Int64.of_int seed) in
        let root = System.spawn_vpe sys ~kernel:0 in
        let sel =
          sel_of
            (System.syscall_sync sys root (Protocol.Sys_alloc_mem { size = 64L; perms = Perms.rw }))
        in
        (* A random two-level sharing shape. *)
        let holders = ref [ (root, sel) ] in
        for _ = 1 to children do
          let donor, donor_sel = List.nth !holders (Rng.int rng (List.length !holders)) in
          let v = System.spawn_vpe sys ~kernel:(Rng.int rng 4) in
          match
            System.syscall_sync sys v
              (Protocol.Sys_obtain_from { donor_vpe = donor.Vpe.id; donor_sel })
          with
          | Protocol.R_sel s -> holders := (v, s) :: !holders
          | _ -> ()
        done;
        let created =
          List.fold_left
            (fun acc k -> acc + (Kernel.stats k).Kernel.caps_created)
            0 (System.kernels sys)
        in
        (match System.syscall_sync sys root (Protocol.Sys_revoke { sel; own = true }) with
        | Protocol.R_ok -> ()
        | r -> Alcotest.failf "revoke: %a" Protocol.pp_reply r);
        let remaining =
          List.fold_left (fun acc k -> acc + Mapdb.count (Kernel.mapdb k)) 0 (System.kernels sys)
        in
        Audit.check sys;
        (created, remaining)
      in
      run false = run true)

(* Random migrations interleaved with exchanges keep the global forest
   consistent and fully revocable. *)
let prop_migration_soak =
  QCheck.Test.make ~name:"migrations under load keep invariants" ~count:15
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let kernels = 3 in
      let sys = System.create (System.config ~kernels ~user_pes_per_kernel:8 ()) in
      let vpes = Array.init 6 (fun i -> System.spawn_vpe sys ~kernel:(i mod kernels)) in
      let roots =
        Array.map
          (fun v ->
            sel_of
              (System.syscall_sync sys v (Protocol.Sys_alloc_mem { size = 64L; perms = Perms.rw })))
          vpes
      in
      for _round = 1 to 4 do
        (* A burst of random exchanges... *)
        for _ = 1 to 8 do
          let d = Rng.int rng 6 and r = Rng.int rng 6 in
          if d <> r then
            System.syscall sys vpes.(r)
              (Protocol.Sys_obtain_from { donor_vpe = vpes.(d).Vpe.id; donor_sel = roots.(d) })
              (fun _ -> ())
        done;
        ignore (System.run sys);
        (* ... then a migration of a random VPE to a random other group. *)
        let v = vpes.(Rng.int rng 6) in
        let dst = Rng.int rng kernels in
        if dst <> v.Vpe.kernel && Vpe.is_alive v && not v.Vpe.syscall_pending then
          System.migrate_vpe sys v ~to_kernel:dst;
        Audit.check sys
      done;
      (* Everything must still tear down to zero. *)
      System.shutdown sys = 0)

(* with_prefix and scale_compute commute and preserve op counts. *)
let prop_trace_metamorphic =
  QCheck.Test.make ~name:"trace prefix/scale commute" ~count:50
    QCheck.(pair (int_bound 5) (int_bound 3))
    (fun (spec_idx, scale_idx) ->
      let spec = List.nth Workloads.all (spec_idx mod List.length Workloads.all) in
      let f = [ 1.0; 1.5; 2.0; 3.25 ] |> fun l -> List.nth l scale_idx in
      let t = spec.Workloads.build () in
      let a = Trace.scale_compute f (Trace.with_prefix "/x" t) in
      let b = Trace.with_prefix "/x" (Trace.scale_compute f t) in
      a.Trace.ops = b.Trace.ops
      && a.Trace.files = b.Trace.files
      && Trace.io_ops a = Trace.io_ops t)

(* Fabric latency is monotonic in payload size and hop count. *)
let prop_fabric_monotonic =
  QCheck.Test.make ~name:"fabric latency monotonic" ~count:100
    QCheck.(pair (int_bound 15) (int_bound 4096))
    (fun (dst, bytes) ->
      let e = Engine.create () in
      let f = Fabric.create e (Topology.mesh ~width:4 ~height:4) Fabric.default_config in
      let l1 = Fabric.latency f ~src:0 ~dst ~bytes in
      let l2 = Fabric.latency f ~src:0 ~dst ~bytes:(bytes + 64) in
      let near = Fabric.latency f ~src:0 ~dst:0 ~bytes in
      Int64.compare l2 l1 >= 0 && Int64.compare l1 near >= 0)

(* Exit after an arbitrary prefix of a workload never leaks. *)
let prop_exit_any_time =
  QCheck.Test.make ~name:"exit mid-workload never leaks" ~count:20
    QCheck.(int_bound 3000000)
    (fun cutoff ->
      let spec = Workloads.postmark in
      let trace = spec.Workloads.build () in
      let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:4 ()) in
      let fs =
        M3fs.create ~config:spec.Workloads.fs_config sys ~kernel:0 ~name:"m3fs"
          ~files:trace.Trace.files ()
      in
      let vpe = System.spawn_vpe sys ~kernel:1 in
      Replay.run sys fs ~vpe trace (fun _ -> ());
      ignore (System.run ~until:(Int64.of_int cutoff) sys);
      (* Cut the application off wherever it happens to be. *)
      ignore (System.run sys);
      System.shutdown sys = 0)

let suite =
  [
    qcheck prop_batching_equivalence;
    qcheck prop_migration_soak;
    qcheck prop_trace_metamorphic;
    qcheck prop_fabric_monotonic;
    qcheck prop_exit_any_time;
  ]
