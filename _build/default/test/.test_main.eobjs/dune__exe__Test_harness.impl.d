test/test_harness.ml: Alcotest Cost Experiment Int64 List Nginx_bench Semperos Workloads
