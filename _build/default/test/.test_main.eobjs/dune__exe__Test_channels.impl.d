test/test_channels.ml: Alcotest Audit Dtu Kernel Message Perms Protocol Queue Semperos System Vpe
