test/test_util.ml: Alcotest Array Gen Heap Int List QCheck QCheck_alcotest Rng Semperos Stats Str_contains String Table
