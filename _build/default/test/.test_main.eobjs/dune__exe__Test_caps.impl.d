test/test_caps.ml: Alcotest Cap Capspace Int Key List Mapdb Perms QCheck QCheck_alcotest Semperos
