test/test_kernel_races.ml: Alcotest Audit Cap Capspace Experiment Int64 Kernel List Mapdb Option Perms Printf Protocol Semperos System Vpe Workloads
