test/test_kernel.ml: Alcotest Array Audit Cap Capspace Cost Dtu Gen Int64 Kernel List Mapdb Option Perms Protocol QCheck QCheck_alcotest Rng Semperos String System Thread_pool Vpe
