test/test_sim.ml: Alcotest Engine Int64 List Semperos Server
