test/test_system.ml: Alcotest Capspace Dtu Fs_client Hashtbl Kernel List M3fs Mapdb Membership Option Perms Protocol Result Semperos Stats System Vpe
