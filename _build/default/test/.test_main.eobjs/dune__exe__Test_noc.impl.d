test/test_noc.ml: Alcotest Engine Fabric Int64 List QCheck QCheck_alcotest Rng Semperos Topology
