test/test_trace.ml: Alcotest Experiment Kernel List M3fs Option Replay Semperos System Trace Workloads
