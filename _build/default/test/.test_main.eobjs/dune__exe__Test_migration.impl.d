test/test_migration.ml: Alcotest Audit Capspace Kernel Mapdb Membership Option Perms Protocol Semperos System Vpe
