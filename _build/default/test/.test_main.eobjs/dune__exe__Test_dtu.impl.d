test/test_dtu.ml: Alcotest Dtu Engine Fabric List Message Semperos Topology
