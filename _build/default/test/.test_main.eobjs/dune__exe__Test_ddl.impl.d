test/test_ddl.ml: Alcotest Key List Membership QCheck QCheck_alcotest Semperos
