test/test_services.ml: Alcotest Cowfs Kernel Option Pipe Result Semperos String System
