test/test_m3fs.ml: Alcotest Fs_client Fs_image Kernel List M3fs Mapdb Option Result Semperos System
