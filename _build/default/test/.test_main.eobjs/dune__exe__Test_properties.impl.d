test/test_properties.ml: Alcotest Array Audit Engine Fabric Int64 Kernel List M3fs Mapdb Perms Protocol QCheck QCheck_alcotest Replay Rng Semperos System Topology Trace Vpe Workloads
