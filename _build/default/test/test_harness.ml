(* Tests for the experiment harness: placement, efficiency metrics, and
   coarse reproductions of the paper's headline trends. *)

open Semperos

let check = Alcotest.check

let test_placement_local_preference () =
  (* With one service per group, every instance uses its own group's
     service. *)
  for i = 0 to 15 do
    check Alcotest.int "local service" (i mod 4)
      (Experiment.service_of_instance ~kernels:4 ~services:4 ~instance:i)
  done;
  (* With fewer services than groups, serviceless groups round-robin. *)
  let s = Experiment.service_of_instance ~kernels:4 ~services:2 ~instance:2 in
  check Alcotest.bool "fallback service exists" true (s >= 0 && s < 2);
  (* With more services than groups, each group's services share its
     clients. *)
  let a = Experiment.service_of_instance ~kernels:2 ~services:4 ~instance:0 in
  let b = Experiment.service_of_instance ~kernels:2 ~services:4 ~instance:2 in
  check Alcotest.bool "spread over group-local services" true (a <> b);
  check Alcotest.int "still group 0's services" 0 (a mod 2);
  check Alcotest.int "still group 0's services" 0 (b mod 2)

let test_config_validation () =
  Alcotest.check_raises "zero instances"
    (Invalid_argument "Experiment.config: non-positive size") (fun () ->
      ignore (Experiment.config ~kernels:1 ~services:1 ~instances:0 Workloads.tar))

let test_outcome_sanity () =
  let o = Experiment.run (Experiment.config ~kernels:2 ~services:2 ~instances:8 Workloads.find) in
  check Alcotest.int "runtimes per instance" 8 (List.length o.Experiment.runtimes);
  check Alcotest.bool "makespan covers mean" true
    (Int64.to_float o.Experiment.max_runtime >= o.Experiment.mean_runtime);
  check Alcotest.int "total PEs" 12 o.Experiment.total_pes;
  check Alcotest.bool "cap ops counted" true (o.Experiment.cap_ops > 0);
  check Alcotest.(list string) "no replay errors" [] o.Experiment.replay_errors

let test_parallel_efficiency_degrades () =
  let spec = Workloads.postmark in
  let single = Experiment.run (Experiment.config ~kernels:4 ~services:4 ~instances:1 spec) in
  let small = Experiment.run (Experiment.config ~kernels:4 ~services:4 ~instances:8 spec) in
  let large = Experiment.run (Experiment.config ~kernels:4 ~services:4 ~instances:64 spec) in
  let e_small = Experiment.parallel_efficiency ~single ~parallel:small in
  let e_large = Experiment.parallel_efficiency ~single ~parallel:large in
  check Alcotest.bool "efficiency below 1" true (e_small <= 1.01);
  check Alcotest.bool "more instances, lower efficiency" true (e_large < e_small)

let test_more_kernels_help () =
  let spec = Workloads.postmark in
  let eff kernels =
    let single = Experiment.run (Experiment.config ~kernels ~services:16 ~instances:1 spec) in
    let p = Experiment.run (Experiment.config ~kernels ~services:16 ~instances:128 spec) in
    Experiment.parallel_efficiency ~single ~parallel:p
  in
  check Alcotest.bool "16 kernels beat 2" true (eff 16 > eff 2)

let test_more_services_help_sqlite () =
  let spec = Workloads.sqlite in
  let eff services =
    let single = Experiment.run (Experiment.config ~kernels:16 ~services ~instances:1 spec) in
    let p = Experiment.run (Experiment.config ~kernels:16 ~services ~instances:128 spec) in
    Experiment.parallel_efficiency ~single ~parallel:p
  in
  check Alcotest.bool "16 services beat 2" true (eff 16 > eff 2)

let test_system_efficiency_formula () =
  let spec = Workloads.find in
  let single = Experiment.run (Experiment.config ~kernels:2 ~services:2 ~instances:1 spec) in
  let p = Experiment.run (Experiment.config ~kernels:2 ~services:2 ~instances:8 spec) in
  let parallel_eff = Experiment.parallel_efficiency ~single ~parallel:p in
  let system_eff = Experiment.system_efficiency ~single ~parallel:p in
  check (Alcotest.float 1e-9) "OS PEs discounted" (parallel_eff *. 8.0 /. 12.0) system_eff

let test_mem_contention_off () =
  (* With the memory-contention model disabled and ample OS resources,
     parallel efficiency stays very high. *)
  let spec = Workloads.tar in
  let cfg n = Experiment.config ~mem_contention:0.0 ~kernels:8 ~services:8 ~instances:n spec in
  let single = Experiment.run (cfg 1) in
  let p = Experiment.run (cfg 32) in
  check Alcotest.bool "near-perfect scaling without memory contention" true
    (Experiment.parallel_efficiency ~single ~parallel:p > 0.95)

let test_nginx_scales () =
  let run servers kernels services =
    Nginx_bench.run (Nginx_bench.config ~kernels ~services ~servers ~duration:1_500_000L ())
  in
  let small = run 8 4 4 in
  let large = run 32 4 4 in
  check Alcotest.int "no errors small" 0 small.Nginx_bench.errors;
  check Alcotest.int "no errors large" 0 large.Nginx_bench.errors;
  check Alcotest.bool "throughput grows with servers" true
    (large.Nginx_bench.requests_per_s > 2.0 *. small.Nginx_bench.requests_per_s)

let test_m3_single_kernel_runs_apps () =
  (* The M3 baseline (one kernel, plain pointers) runs the same
     workloads. *)
  let o =
    Experiment.run
      (Experiment.config ~mode:Cost.M3 ~kernels:1 ~services:1 ~instances:4 Workloads.tar)
  in
  check Alcotest.(list string) "no errors" [] o.Experiment.replay_errors;
  check Alcotest.int "cap ops" (4 * 21) o.Experiment.cap_ops

let suite =
  [
    Alcotest.test_case "placement prefers local services" `Quick test_placement_local_preference;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "outcome sanity" `Quick test_outcome_sanity;
    Alcotest.test_case "efficiency degrades with instances" `Quick test_parallel_efficiency_degrades;
    Alcotest.test_case "more kernels help postmark" `Quick test_more_kernels_help;
    Alcotest.test_case "more services help sqlite" `Quick test_more_services_help_sqlite;
    Alcotest.test_case "system efficiency formula" `Quick test_system_efficiency_formula;
    Alcotest.test_case "no contention, near-perfect scaling" `Quick test_mem_contention_off;
    Alcotest.test_case "nginx scales with servers" `Quick test_nginx_scales;
    Alcotest.test_case "M3 baseline runs applications" `Quick test_m3_single_kernel_runs_apps;
  ]
