(* Tests for the DTU model: endpoints, privilege, credits, slots,
   drops, memory access. *)

open Semperos

let check = Alcotest.check

let error_t = Alcotest.testable Dtu.pp_error ( = )

let make_grid () =
  let e = Engine.create () in
  let f = Fabric.create e (Topology.mesh ~width:4 ~height:4) Fabric.default_config in
  (e, Dtu.create_grid f)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected DTU error: %s" (Dtu.error_to_string e)

let test_create_and_find () =
  let _, g = make_grid () in
  let d = Dtu.create g ~pe:3 in
  check Alcotest.int "pe" 3 (Dtu.pe d);
  check Alcotest.int "endpoints" Dtu.default_endpoints (Dtu.endpoint_count d);
  check Alcotest.bool "starts privileged" true (Dtu.is_privileged d);
  check Alcotest.bool "find" true (Dtu.find g ~pe:3 == d);
  Alcotest.check_raises "duplicate" (Invalid_argument "Dtu.create: PE already has a DTU")
    (fun () -> ignore (Dtu.create g ~pe:3));
  Alcotest.check_raises "outside topology" (Invalid_argument "Dtu.create: PE outside topology")
    (fun () -> ignore (Dtu.create g ~pe:99));
  Alcotest.check_raises "not found" Not_found (fun () -> ignore (Dtu.find g ~pe:7))

let test_privilege_enforcement () =
  let _, g = make_grid () in
  let d = Dtu.create g ~pe:0 in
  Dtu.deprivilege d;
  check error_t "send config refused" Dtu.Not_privileged
    (match Dtu.configure_send d ~ep:0 ~dst_pe:1 ~dst_ep:0 ~credits:4 with
    | Error e -> e
    | Ok () -> Alcotest.fail "config should be refused");
  (* The kernel path still works. *)
  let kernel = Dtu.create g ~pe:1 in
  ok (Dtu.configure_remote ~by:kernel d ~ep:0 (`Send (1, 0, 4)));
  (* But not from another deprivileged DTU. *)
  let rogue = Dtu.create g ~pe:2 in
  Dtu.deprivilege rogue;
  check error_t "rogue remote config refused" Dtu.Not_privileged
    (match Dtu.configure_remote ~by:rogue d ~ep:1 `Invalidate with
    | Error e -> e
    | Ok () -> Alcotest.fail "rogue config should be refused")

let setup_channel () =
  let e, g = make_grid () in
  let sender = Dtu.create g ~pe:0 in
  let receiver = Dtu.create g ~pe:5 in
  let inbox = ref [] in
  ok (Dtu.configure_receive receiver ~ep:2 ~slots:2 ~handler:(fun m -> inbox := m :: !inbox));
  ok (Dtu.configure_send sender ~ep:1 ~dst_pe:5 ~dst_ep:2 ~credits:2);
  (e, g, sender, receiver, inbox)

let test_send_receive () =
  let e, g, sender, _, inbox = setup_channel () in
  ok (Dtu.send sender ~ep:1 ~bytes:64 ~payload:(Message.Raw "hello"));
  ignore (Engine.run e);
  (match !inbox with
  | [ m ] ->
    check Alcotest.int "src pe" 0 m.Message.src_pe;
    check Alcotest.int "dst ep" 2 m.Message.dst_ep;
    (match m.Message.payload with
    | Message.Raw s -> check Alcotest.string "payload" "hello" s
    | _ -> Alcotest.fail "wrong payload")
  | l -> Alcotest.failf "expected 1 message, got %d" (List.length l));
  (* Slot still occupied until acked; credit consumed. *)
  check Alcotest.(result int error_t) "credit used" (Ok 1) (Dtu.credits sender ~ep:1);
  Dtu.ack g (List.hd !inbox);
  check Alcotest.(result int error_t) "credit returned" (Ok 2) (Dtu.credits sender ~ep:1)

let test_credit_exhaustion () =
  let e, g, sender, receiver, inbox = setup_channel () in
  ok (Dtu.send sender ~ep:1 ~bytes:8 ~payload:(Message.Raw "1"));
  ok (Dtu.send sender ~ep:1 ~bytes:8 ~payload:(Message.Raw "2"));
  check error_t "out of credits" Dtu.No_credits
    (match Dtu.send sender ~ep:1 ~bytes:8 ~payload:(Message.Raw "3") with
    | Error e -> e
    | Ok () -> Alcotest.fail "should be out of credits");
  ignore (Engine.run e);
  check Alcotest.int "both delivered" 2 (List.length !inbox);
  check Alcotest.(result int error_t) "no free slots" (Ok 0) (Dtu.free_slots receiver ~ep:2);
  List.iter (Dtu.ack g) !inbox;
  check Alcotest.(result int error_t) "slots freed" (Ok 2) (Dtu.free_slots receiver ~ep:2)

let test_drop_on_full_receive () =
  let e, g, sender, receiver, inbox = setup_channel () in
  (* Refill sender generously so the receive endpoint is the limit. *)
  ok (Dtu.configure_send sender ~ep:1 ~dst_pe:5 ~dst_ep:2 ~credits:8);
  for i = 1 to 4 do
    ok (Dtu.send sender ~ep:1 ~bytes:8 ~payload:(Message.Raw (string_of_int i)))
  done;
  ignore (Engine.run e);
  check Alcotest.int "two fit in slots" 2 (List.length !inbox);
  check Alcotest.int "two dropped" 2 (Dtu.drops receiver);
  (* Dropped messages still return their credits. *)
  check Alcotest.(result int error_t) "credits for dropped returned" (Ok 6) (Dtu.credits sender ~ep:1);
  List.iter (Dtu.ack g) !inbox;
  check Alcotest.(result int error_t) "all credits back" (Ok 8) (Dtu.credits sender ~ep:1)

let test_wrong_kind_and_bounds () =
  let _, g = make_grid () in
  let d = Dtu.create g ~pe:0 in
  check error_t "send on free ep" Dtu.Wrong_kind
    (match Dtu.send d ~ep:0 ~bytes:8 ~payload:(Message.Raw "x") with
    | Error e -> e
    | Ok () -> Alcotest.fail "should fail");
  check error_t "invalid ep" Dtu.Invalid_endpoint
    (match Dtu.send d ~ep:99 ~bytes:8 ~payload:(Message.Raw "x") with
    | Error e -> e
    | Ok () -> Alcotest.fail "should fail")

let test_memory_endpoint () =
  let e, g = make_grid () in
  let d = Dtu.create g ~pe:0 in
  let _mem_host = Dtu.create g ~pe:15 in
  ok (Dtu.configure_memory d ~ep:3 ~host_pe:15 ~base:0L ~size:4096L ~writable:false);
  let read_done = ref false in
  ok (Dtu.read d ~ep:3 ~offset:1024L ~bytes:512 (fun () -> read_done := true));
  ignore (Engine.run e);
  check Alcotest.bool "read completes" true !read_done;
  check error_t "out of bounds" Dtu.Out_of_bounds
    (match Dtu.read d ~ep:3 ~offset:4000L ~bytes:512 (fun () -> ()) with
    | Error e -> e
    | Ok () -> Alcotest.fail "should fail");
  check error_t "write denied" Dtu.No_permission
    (match Dtu.write d ~ep:3 ~offset:0L ~bytes:8 (fun () -> ()) with
    | Error e -> e
    | Ok () -> Alcotest.fail "should fail")

let test_invalidate () =
  let _, g = make_grid () in
  let d = Dtu.create g ~pe:0 in
  ok (Dtu.configure_send d ~ep:1 ~dst_pe:1 ~dst_ep:0 ~credits:1);
  ok (Dtu.invalidate d ~ep:1);
  check error_t "invalidated" Dtu.Wrong_kind
    (match Dtu.send d ~ep:1 ~bytes:8 ~payload:(Message.Raw "x") with
    | Error e -> e
    | Ok () -> Alcotest.fail "should fail")

let suite =
  [
    Alcotest.test_case "create and find" `Quick test_create_and_find;
    Alcotest.test_case "privilege enforcement" `Quick test_privilege_enforcement;
    Alcotest.test_case "send and receive" `Quick test_send_receive;
    Alcotest.test_case "credit exhaustion" `Quick test_credit_exhaustion;
    Alcotest.test_case "drop on full receive endpoint" `Quick test_drop_on_full_receive;
    Alcotest.test_case "wrong kind and bounds" `Quick test_wrong_kind_and_bounds;
    Alcotest.test_case "memory endpoint" `Quick test_memory_endpoint;
    Alcotest.test_case "invalidate" `Quick test_invalidate;
  ]
