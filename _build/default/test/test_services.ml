(* Tests for the additional OS services: the zero-copy pipe service and
   the copy-on-write filesystem — the paper's §3 motivating service. *)

open Semperos

let check = Alcotest.check

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let run_sync sys f =
  let result = ref None in
  f (fun r -> result := Some r);
  ignore (System.run sys);
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "operation did not complete"

(* ------------------------------------------------------------------ *)
(* Pipe service                                                        *)

let pipe_setup () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:6 ()) in
  let pipe = Pipe.create sys ~kernel:0 ~name:"pipes" () in
  let connect k =
    let vpe = System.spawn_vpe sys ~kernel:k in
    ok (run_sync sys (Pipe.Endpoint.connect sys pipe ~vpe))
  in
  (sys, pipe, connect)

let test_pipe_transfer () =
  let sys, pipe, connect = pipe_setup () in
  let producer = connect 0 in
  let consumer = connect 1 in
  ok (run_sync sys (Pipe.Endpoint.create_pipe producer "p0"));
  let wp = ok (run_sync sys (Pipe.Endpoint.open_pipe producer "p0" ~role:`Producer)) in
  let rp = ok (run_sync sys (Pipe.Endpoint.open_pipe consumer "p0" ~role:`Consumer)) in
  ok (run_sync sys (Pipe.Endpoint.send producer ~pipe:wp ~bytes:4096));
  let n = ok (run_sync sys (Pipe.Endpoint.recv consumer ~pipe:rp ~bytes:8192)) in
  check Alcotest.int "got what was sent" 4096 n;
  check Alcotest.int "grants for both ends" 2 (Pipe.stats pipe).Pipe.grants;
  (* The capability exchanges crossed the group boundary for the consumer. *)
  check Alcotest.bool "spanning exchange happened" true
    ((Kernel.stats (System.kernel sys 0)).Kernel.exchanges_spanning > 0)

let test_pipe_blocking_reader () =
  let sys, _pipe, connect = pipe_setup () in
  let producer = connect 0 in
  let consumer = connect 1 in
  ok (run_sync sys (Pipe.Endpoint.create_pipe producer "p"));
  let wp = ok (run_sync sys (Pipe.Endpoint.open_pipe producer "p" ~role:`Producer)) in
  let rp = ok (run_sync sys (Pipe.Endpoint.open_pipe consumer "p" ~role:`Consumer)) in
  (* The reader goes first: it must park until data arrives. *)
  let got = ref None in
  Pipe.Endpoint.recv consumer ~pipe:rp ~bytes:1024 (fun r -> got := Some r);
  ignore (System.run sys);
  check Alcotest.bool "reader parked" true (!got = None);
  ok (run_sync sys (Pipe.Endpoint.send producer ~pipe:wp ~bytes:512));
  check Alcotest.int "reader woke with data" 512 (ok (Option.get !got))

let test_pipe_backpressure () =
  let sys, pipe, connect = pipe_setup () in
  ignore pipe;
  let producer = connect 0 in
  let consumer = connect 0 in
  ok (run_sync sys (Pipe.Endpoint.create_pipe producer "p"));
  let wp = ok (run_sync sys (Pipe.Endpoint.open_pipe producer "p" ~role:`Producer)) in
  let rp = ok (run_sync sys (Pipe.Endpoint.open_pipe consumer "p" ~role:`Consumer)) in
  (* Fill the ring (64 KiB default), then one more write must park. *)
  ok (run_sync sys (Pipe.Endpoint.send producer ~pipe:wp ~bytes:(64 * 1024)));
  let second = ref None in
  Pipe.Endpoint.send producer ~pipe:wp ~bytes:1024 (fun r -> second := Some r);
  ignore (System.run sys);
  check Alcotest.bool "writer parked on full ring" true (!second = None);
  let n = ok (run_sync sys (Pipe.Endpoint.recv consumer ~pipe:rp ~bytes:(32 * 1024))) in
  check Alcotest.int "drained" (32 * 1024) n;
  check Alcotest.bool "writer woke" true (match !second with Some (Ok ()) -> true | _ -> false)

let test_pipe_close_revokes () =
  let sys, pipe, connect = pipe_setup () in
  let producer = connect 0 in
  let consumer = connect 1 in
  ok (run_sync sys (Pipe.Endpoint.create_pipe producer "p"));
  let wp = ok (run_sync sys (Pipe.Endpoint.open_pipe producer "p" ~role:`Producer)) in
  let rp = ok (run_sync sys (Pipe.Endpoint.open_pipe consumer "p" ~role:`Consumer)) in
  (* Closing the producer end puts the pipe at EOF; reads yield 0 and
     the service revokes the per-end capabilities. *)
  ok (run_sync sys (Pipe.Endpoint.close producer ~pipe:wp));
  let n = ok (run_sync sys (Pipe.Endpoint.recv consumer ~pipe:rp ~bytes:64)) in
  check Alcotest.int "EOF after producer close" 0 n;
  ok (run_sync sys (Pipe.Endpoint.close consumer ~pipe:rp));
  ignore (System.run sys);
  check Alcotest.int "revokes issued" 2 (Pipe.stats pipe).Pipe.revoke_calls;
  (match System.check_invariants sys with
  | [] -> ()
  | errs -> Alcotest.fail (String.concat "; " errs))

let test_pipe_errors () =
  let sys, _pipe, connect = pipe_setup () in
  let e = connect 0 in
  check Alcotest.bool "open missing pipe" true
    (Result.is_error (run_sync sys (Pipe.Endpoint.open_pipe e "nope" ~role:`Consumer)));
  ok (run_sync sys (Pipe.Endpoint.create_pipe e "dup"));
  check Alcotest.bool "duplicate create" true
    (Result.is_error (run_sync sys (Pipe.Endpoint.create_pipe e "dup")));
  let bad = ref None in
  Pipe.Endpoint.send e ~pipe:99 ~bytes:1 (fun r -> bad := Some r);
  check Alcotest.bool "send on unopened pipe" true
    (match !bad with Some (Error _) -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Copy-on-write filesystem                                            *)

let cow_setup ?(files = [ ("/vol/base", 600_000L) ]) () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:6 ()) in
  let fs = Cowfs.create sys ~kernel:0 ~name:"cowfs" ~files () in
  let connect k =
    let vpe = System.spawn_vpe sys ~kernel:k in
    ok (run_sync sys (Cowfs.Client.connect sys fs ~vpe))
  in
  (sys, fs, connect)

let test_cow_snapshot_shares () =
  let sys, fs, connect = cow_setup () in
  let c = connect 1 in
  ok (run_sync sys (Cowfs.Client.snapshot c ~src:"/vol/base" ~dst:"/vol/snap"));
  check Alcotest.int "snapshots" 1 (Cowfs.stats fs).Cowfs.snapshots;
  (* 600000 bytes at 256 KiB extents = 3 extents, all shared. *)
  check Alcotest.int "extents shared" 3 (Cowfs.shared_extents fs "/vol/base");
  (* Reading the snapshot works and costs no copy. *)
  let fd = ok (run_sync sys (Cowfs.Client.open_ c "/vol/snap" ~write:false)) in
  let n = ok (run_sync sys (Cowfs.Client.read c ~fd ~pos:0L ~bytes:4096)) in
  check Alcotest.int "read from snapshot" 4096 n;
  check Alcotest.int "no COW breaks yet" 0 (Cowfs.stats fs).Cowfs.cow_breaks

let test_cow_break_on_write () =
  let sys, fs, connect = cow_setup () in
  let reader = connect 1 in
  let writer = connect 0 in
  ok (run_sync sys (Cowfs.Client.snapshot writer ~src:"/vol/base" ~dst:"/vol/snap"));
  (* The reader holds a capability on the base file. *)
  let rfd = ok (run_sync sys (Cowfs.Client.open_ reader "/vol/base" ~write:false)) in
  ignore (ok (run_sync sys (Cowfs.Client.read reader ~fd:rfd ~pos:0L ~bytes:4096)));
  let caps_before = System.total_cap_ops sys in
  (* The writer hits the first extent of the base file: COW break. *)
  let wfd = ok (run_sync sys (Cowfs.Client.open_ writer "/vol/base" ~write:true)) in
  ok (run_sync sys (Cowfs.Client.write writer ~fd:wfd ~pos:0L ~bytes:4096));
  check Alcotest.int "one COW break" 1 (Cowfs.stats fs).Cowfs.cow_breaks;
  check Alcotest.bool "alloc + revoke + grant happened" true
    (System.total_cap_ops sys > caps_before + 2);
  (* The reader transparently re-obtains (its old capability was
     revoked by the break) and keeps reading. *)
  let n = ok (run_sync sys (Cowfs.Client.read reader ~fd:rfd ~pos:0L ~bytes:4096)) in
  check Alcotest.int "reader continues" 4096 n;
  (* A second write to the same extent does not break again. *)
  ok (run_sync sys (Cowfs.Client.write writer ~fd:wfd ~pos:100L ~bytes:100));
  check Alcotest.int "still one break" 1 (Cowfs.stats fs).Cowfs.cow_breaks;
  ignore (System.run sys);
  (match System.check_invariants sys with
  | [] -> ()
  | errs -> Alcotest.fail (String.concat "; " errs))

let test_cow_isolation () =
  let sys, fs, connect = cow_setup () in
  let c = connect 0 in
  ok (run_sync sys (Cowfs.Client.snapshot c ~src:"/vol/base" ~dst:"/vol/snap"));
  (* Writing to the snapshot privatises the snapshot's extent; the base
     keeps the original. *)
  let sfd = ok (run_sync sys (Cowfs.Client.open_ c "/vol/snap" ~write:true)) in
  ok (run_sync sys (Cowfs.Client.write c ~fd:sfd ~pos:0L ~bytes:64));
  check Alcotest.int "break on snapshot write" 1 (Cowfs.stats fs).Cowfs.cow_breaks;
  (* Base still reports its extent shared-marked or not, but reads work. *)
  let bfd = ok (run_sync sys (Cowfs.Client.open_ c "/vol/base" ~write:false)) in
  let n = ok (run_sync sys (Cowfs.Client.read c ~fd:bfd ~pos:0L ~bytes:4096)) in
  check Alcotest.int "base readable" 4096 n

let test_cow_errors () =
  let sys, _fs, connect = cow_setup () in
  let c = connect 0 in
  check Alcotest.bool "open missing" true
    (Result.is_error (run_sync sys (Cowfs.Client.open_ c "/nope" ~write:false)));
  check Alcotest.bool "snapshot missing src" true
    (Result.is_error (run_sync sys (Cowfs.Client.snapshot c ~src:"/nope" ~dst:"/d")));
  let fd = ok (run_sync sys (Cowfs.Client.open_ c "/vol/base" ~write:false)) in
  check Alcotest.bool "write on read-only fd" true
    (Result.is_error (run_sync sys (Cowfs.Client.write c ~fd ~pos:0L ~bytes:10)));
  check Alcotest.int "read past EOF" 0
    (ok (run_sync sys (Cowfs.Client.read c ~fd ~pos:999_999_999L ~bytes:10)))

let suite =
  [
    Alcotest.test_case "pipe transfer" `Quick test_pipe_transfer;
    Alcotest.test_case "pipe blocking reader" `Quick test_pipe_blocking_reader;
    Alcotest.test_case "pipe backpressure" `Quick test_pipe_backpressure;
    Alcotest.test_case "pipe close revokes" `Quick test_pipe_close_revokes;
    Alcotest.test_case "pipe errors" `Quick test_pipe_errors;
    Alcotest.test_case "cow snapshot shares extents" `Quick test_cow_snapshot_shares;
    Alcotest.test_case "cow break on write" `Quick test_cow_break_on_write;
    Alcotest.test_case "cow isolation" `Quick test_cow_isolation;
    Alcotest.test_case "cow errors" `Quick test_cow_errors;
  ]
