(* Shared memory across PE groups: one producer delegates a buffer to
   many consumers spread over several kernels, then tears the sharing
   down with a single recursive revoke — the Figure 5 scenario of the
   paper, and the pattern behind zero-copy IPC on SemperOS.

   Run with: dune exec examples/shared_memory.exe *)

open Semperos

let consumers = 24
let extra_kernels = 3

let sel_of = function
  | Protocol.R_sel s -> s
  | r -> Format.kasprintf failwith "expected a selector, got %a" Protocol.pp_reply r

let () =
  let kernels = 1 + extra_kernels in
  let sys = System.create (System.config ~kernels ~user_pes_per_kernel:(consumers + 2) ()) in
  let producer = System.spawn_vpe sys ~kernel:0 in

  (* The producer allocates the shared region once. *)
  let region =
    sel_of
      (System.syscall_sync sys producer (Protocol.Sys_alloc_mem { size = 1048576L; perms = Perms.rw }))
  in

  (* Consumers on every group obtain read-write access. Each obtain adds
     a child under the producer's capability, across kernels. *)
  let members =
    List.init consumers (fun i ->
        let k = 1 + (i mod extra_kernels) in
        let v = System.spawn_vpe sys ~kernel:k in
        let s =
          sel_of
            (System.syscall_sync sys v
               (Protocol.Sys_obtain_from { donor_vpe = producer.Vpe.id; donor_sel = region }))
        in
        (v, s))
  in
  Format.printf "%d consumers over %d kernels share the region@." consumers extra_kernels;

  (* Each consumer activates a DTU memory endpoint for its capability
     and performs a read through it, without any kernel involvement. *)
  let reads_done = ref 0 in
  List.iter
    (fun (v, s) ->
      match System.syscall_sync sys v (Protocol.Sys_activate { sel = s; ep = 4 }) with
      | Protocol.R_ok -> (
        let dtu = Dtu.find (System.grid sys) ~pe:v.Vpe.pe in
        match Dtu.read dtu ~ep:4 ~offset:0L ~bytes:4096 (fun () -> incr reads_done) with
        | Ok () -> ()
        | Error e -> Format.kasprintf failwith "DTU read failed: %a" Dtu.pp_error e)
      | r -> Format.kasprintf failwith "activate failed: %a" Protocol.pp_reply r)
    members;
  ignore (System.run sys);
  Format.printf "%d zero-kernel reads through memory endpoints completed@." !reads_done;

  (* One revoke dismantles the whole sharing tree, in parallel across
     the kernels holding children. *)
  let t0 = System.now sys in
  (match System.syscall_sync sys producer (Protocol.Sys_revoke { sel = region; own = true }) with
  | Protocol.R_ok -> ()
  | r -> Format.kasprintf failwith "revoke failed: %a" Protocol.pp_reply r);
  Format.printf "revoked %d capabilities in %Ld cycles (%.1f us)@." (consumers + 1)
    (Int64.sub (System.now sys) t0)
    (Int64.to_float (Int64.sub (System.now sys) t0) /. 2000.0);

  let remaining =
    List.fold_left (fun acc k -> acc + Mapdb.count (Kernel.mapdb (System.kernel sys k))) 0
      (List.init kernels Fun.id)
  in
  Format.printf "capabilities left in all mapping databases: %d@." remaining;
  match System.check_invariants sys with
  | [] -> Format.printf "invariants hold@."
  | errs -> List.iter (Format.printf "INVARIANT VIOLATION: %s@.") errs
