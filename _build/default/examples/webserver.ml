(* The Nginx scenario (paper §5.3.3): webserver processes on dedicated
   PEs serve static files out of m3fs; every request costs one
   capability obtain and one revoke besides the service IPC. Compare a
   starved OS configuration with a provisioned one.

   Run with: dune exec examples/webserver.exe *)

open Semperos

let () =
  let servers = 48 in
  let run ~kernels ~services =
    let o =
      Nginx_bench.run (Nginx_bench.config ~kernels ~services ~servers ~duration:2_000_000L ())
    in
    Format.printf "%2d kernels, %2d services, %d server processes: %8.0f requests/s (%d errors)@."
      kernels services servers o.Nginx_bench.requests_per_s o.Nginx_bench.errors;
    o.Nginx_bench.requests_per_s
  in
  let starved = run ~kernels:2 ~services:2 in
  let provisioned = run ~kernels:8 ~services:8 in
  Format.printf "provisioning the OS with 4x the PEs buys %.1f%% more throughput@."
    (100.0 *. ((provisioned /. starved) -. 1.0))
