(* m3fs in action: a client in another PE group opens a session with
   the filesystem service, reads and writes files through memory
   capabilities, and replays the paper's tar workload.

   Run with: dune exec examples/file_workload.exe *)

open Semperos

let ok = function
  | Ok v -> v
  | Error e -> failwith e

let () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:6 ()) in
  (* Service in group 0, client in group 1: the session and every
     capability grant cross the kernel boundary. *)
  let fs =
    M3fs.create sys ~kernel:0 ~name:"m3fs"
      ~files:[ ("/data/input.bin", 786432L) ]
      ()
  in
  let vpe = System.spawn_vpe sys ~kernel:1 in

  let finished = ref false in
  Fs_client.connect sys fs ~vpe (fun conn ->
      let client = ok conn in
      Fs_client.open_ client "/data/input.bin" ~write:false ~create:false (fun r ->
          let fd = ok r in
          Fs_client.read client ~fd ~bytes:786432 (fun r ->
              Format.printf "read %d bytes through extent capabilities@." (ok r);
              Fs_client.close client ~fd (fun r ->
                  ok r;
                  Fs_client.open_ client "/data/copy.bin" ~write:true ~create:true (fun r ->
                      let out = ok r in
                      Fs_client.write client ~fd:out ~bytes:786432 (fun r ->
                          ok r;
                          Fs_client.close client ~fd:out (fun r ->
                              ok r;
                              Fs_client.stat client "/data/copy.bin" (fun r ->
                                  ok r;
                                  Format.printf
                                    "copied the file; client issued %d capability operations@."
                                    (Fs_client.cap_ops client);
                                  finished := true))))))));
  ignore (System.run sys);
  assert !finished;
  let fstats = M3fs.stats fs in
  Format.printf "service: %d metadata IPCs, %d grants, %d appends, %d revocations@."
    fstats.M3fs.meta_ops fstats.M3fs.grants fstats.M3fs.appends fstats.M3fs.revoke_calls;

  (* Now replay a full application: the paper's tar benchmark. *)
  let spec = Workloads.tar in
  let outcome = Experiment.run (Experiment.config ~kernels:2 ~services:2 ~instances:8 spec) in
  Format.printf "tar x8 on 2 kernels + 2 services: %d capability ops, mean runtime %.2f ms@."
    outcome.Experiment.cap_ops
    (outcome.Experiment.mean_runtime /. 2.0e6);
  match System.check_invariants sys with
  | [] -> Format.printf "invariants hold@."
  | errs -> List.iter (Format.printf "INVARIANT VIOLATION: %s@.") errs
