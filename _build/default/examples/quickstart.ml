(* Quickstart: boot a two-kernel SemperOS, exchange a capability across
   PE groups, and revoke it again.

   Run with: dune exec examples/quickstart.exe *)

open Semperos

let sel_of = function
  | Protocol.R_sel s -> s
  | r -> Format.kasprintf failwith "expected a selector, got %a" Protocol.pp_reply r

let () =
  (* Two PE groups, each managed by its own kernel, each with four user
     PEs, connected by a mesh NoC. *)
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:4 ()) in

  (* Spawn an "application" VPE in each group. *)
  let alice = System.spawn_vpe sys ~kernel:0 in
  let bob = System.spawn_vpe sys ~kernel:1 in
  Format.printf "alice = %a, bob = %a@." Vpe.pp alice Vpe.pp bob;

  (* Alice allocates a 64 KiB buffer: she now holds a memory capability. *)
  let buffer =
    sel_of (System.syscall_sync sys alice (Protocol.Sys_alloc_mem { size = 65536L; perms = Perms.rw }))
  in
  Format.printf "alice allocated a buffer (selector %d)@." buffer;

  (* Bob obtains it. His kernel and Alice's kernel run the distributed
     exchange protocol: the new capability is a child of Alice's in the
     global capability tree, linked across kernels by DDL keys. *)
  let t0 = System.now sys in
  let bob_sel =
    sel_of
      (System.syscall_sync sys bob
         (Protocol.Sys_obtain_from { donor_vpe = alice.Vpe.id; donor_sel = buffer }))
  in
  Format.printf "bob obtained the buffer (selector %d) in %Ld cycles (group-spanning)@." bob_sel
    (Int64.sub (System.now sys) t0);

  (* Alice revokes: the recursive revocation reaches Bob's kernel and
     removes his copy before acknowledging. *)
  let t0 = System.now sys in
  (match System.syscall_sync sys alice (Protocol.Sys_revoke { sel = buffer; own = true }) with
  | Protocol.R_ok -> ()
  | r -> Format.kasprintf failwith "revoke failed: %a" Protocol.pp_reply r);
  Format.printf "alice revoked the buffer in %Ld cycles@." (Int64.sub (System.now sys) t0);

  (* Bob's selector is dead now. *)
  (match
     System.syscall_sync sys bob (Protocol.Sys_obtain_from { donor_vpe = bob.Vpe.id; donor_sel = bob_sel })
   with
  | Protocol.R_err Protocol.E_no_such_cap -> Format.printf "bob's capability is gone, as it must be@."
  | r -> Format.kasprintf failwith "unexpected: %a" Protocol.pp_reply r);

  (* The mapping databases are clean again. *)
  (match System.check_invariants sys with
  | [] -> Format.printf "invariants hold on both kernels@."
  | errs -> List.iter (Format.printf "INVARIANT VIOLATION: %s@.") errs);
  let stats k = Kernel.stats (System.kernel sys k) in
  Format.printf "kernel 0: %d syscalls, %d cap ops; kernel 1: %d syscalls, %d cap ops@."
    (stats 0).Kernel.syscalls (stats 0).Kernel.cap_ops (stats 1).Kernel.syscalls
    (stats 1).Kernel.cap_ops
