(* PE migration — the paper's named future work (§3.2), implemented:
   moving a PE between groups means updating the membership table at
   every kernel and handing the capability records to the new manager.
   Sharing established before the migration keeps working and revokes
   correctly across the new topology.

   Run with: dune exec examples/migration.exe *)

open Semperos

let sel_of = function
  | Protocol.R_sel s -> s
  | r -> Format.kasprintf failwith "expected a selector, got %a" Protocol.pp_reply r

let () =
  let sys = System.create (System.config ~kernels:3 ~user_pes_per_kernel:4 ()) in
  let worker = System.spawn_vpe sys ~kernel:0 in
  let peer = System.spawn_vpe sys ~kernel:1 in
  Format.printf "worker starts under kernel %d@." worker.Vpe.kernel;

  (* Build some state: the worker owns a buffer, the peer shares it. *)
  let buffer =
    sel_of (System.syscall_sync sys worker (Protocol.Sys_alloc_mem { size = 65536L; perms = Perms.rw }))
  in
  ignore
    (sel_of
       (System.syscall_sync sys peer
          (Protocol.Sys_obtain_from { donor_vpe = worker.Vpe.id; donor_sel = buffer })));
  Format.printf "peer (kernel %d) shares the worker's buffer@." peer.Vpe.kernel;

  (* Migrate the worker's PE into kernel 2's group: membership updates
     broadcast to all kernels, capability records transferred. *)
  System.migrate_vpe sys worker ~to_kernel:2;
  Format.printf "worker migrated to kernel %d; records moved with it@." worker.Vpe.kernel;
  (match Audit.run sys with
  | { Audit.errors = []; capabilities; spanning_links; _ } ->
    Format.printf "audit: %d capabilities, %d cross-kernel links, all consistent@." capabilities
      spanning_links
  | { Audit.errors; _ } -> List.iter (Format.printf "AUDIT: %s@.") errors);

  (* Syscalls now go to kernel 2, and the old sharing still revokes. *)
  let t0 = System.now sys in
  (match System.syscall_sync sys worker (Protocol.Sys_revoke { sel = buffer; own = true }) with
  | Protocol.R_ok -> ()
  | r -> Format.kasprintf failwith "revoke failed: %a" Protocol.pp_reply r);
  Format.printf
    "pre-migration sharing revoked through the new kernel in %Ld cycles (peer holds %d caps)@."
    (Int64.sub (System.now sys) t0)
    (Capspace.count peer.Vpe.capspace);
  let leaked = System.shutdown sys in
  Format.printf "shutdown: %d capabilities leaked@." leaked;
  assert (leaked = 0)
