(* Copy-on-write sharing, the motivating service pattern from the
   paper's design section (§3): "A copy-on-write filesystem can be
   implemented efficiently on top of a capability system with a
   sufficiently fast revoke operation. When an application performs a
   write it receives a mapping to its own copy of data and access to
   the original data has to be revoked."

   A snapshot owner hands out read-only derived capabilities; when a
   reader wants to write, the owner revokes that reader's view and
   delegates a fresh private copy.

   Run with: dune exec examples/cow_snapshot.exe *)

open Semperos

let sel_of = function
  | Protocol.R_sel s -> s
  | r -> Format.kasprintf failwith "expected a selector, got %a" Protocol.pp_reply r

let () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:6 ()) in
  let owner = System.spawn_vpe sys ~kernel:0 in
  let readers = List.init 4 (fun i -> System.spawn_vpe sys ~kernel:(i mod 2)) in

  (* The snapshot: one page of data. *)
  let snapshot =
    sel_of (System.syscall_sync sys owner (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))
  in

  (* The owner derives a read-only view — a child capability with
     narrowed permissions — and every reader obtains it. *)
  let ro_view =
    sel_of
      (System.syscall_sync sys owner
         (Protocol.Sys_derive_mem { sel = snapshot; offset = 0L; size = 4096L; perms = Perms.r }))
  in
  let reader_sels =
    List.map
      (fun v ->
        sel_of
          (System.syscall_sync sys v
             (Protocol.Sys_obtain_from { donor_vpe = owner.Vpe.id; donor_sel = ro_view })))
      readers
  in
  Format.printf "4 readers share a read-only snapshot view@.";

  (* Permissions can only narrow: a derive that tries to widen fails. *)
  let widen =
    match readers, reader_sels with
    | v :: _, s :: _ ->
      System.syscall_sync sys v
        (Protocol.Sys_derive_mem { sel = s; offset = 0L; size = 4096L; perms = Perms.rw })
    | _, _ -> assert false
  in
  (match widen with
  | Protocol.R_err Protocol.E_invalid -> Format.printf "widening rights through derive is refused@."
  | r -> Format.kasprintf failwith "unexpected: %a" Protocol.pp_reply r);

  (* COW fault on reader 0: revoke only the read-only tree (the other
     readers lose the stale view too, as in a snapshot rollover), then
     give the writer a private copy. *)
  let t0 = System.now sys in
  (match System.syscall_sync sys owner (Protocol.Sys_revoke { sel = ro_view; own = true }) with
  | Protocol.R_ok -> ()
  | r -> Format.kasprintf failwith "revoke failed: %a" Protocol.pp_reply r);
  let revoke_cycles = Int64.sub (System.now sys) t0 in

  let writer = List.hd readers in
  let private_copy =
    sel_of (System.syscall_sync sys owner (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))
  in
  (match
     System.syscall_sync sys owner
       (Protocol.Sys_delegate_to { recv_vpe = writer.Vpe.id; sel = private_copy })
   with
  | Protocol.R_ok -> ()
  | r -> Format.kasprintf failwith "delegate failed: %a" Protocol.pp_reply r);
  Format.printf
    "COW fault served: stale views revoked in %Ld cycles (%.1f us), writer got a private copy@."
    revoke_cycles
    (Int64.to_float revoke_cycles /. 2000.0);

  (* The snapshot itself is untouched; only the derived views are gone. *)
  (match System.syscall_sync sys owner (Protocol.Sys_revoke { sel = snapshot; own = false }) with
  | Protocol.R_ok -> Format.printf "snapshot master capability survived, children pruned@."
  | r -> Format.kasprintf failwith "unexpected: %a" Protocol.pp_reply r);
  match System.check_invariants sys with
  | [] -> Format.printf "invariants hold@."
  | errs -> List.iter (Format.printf "INVARIANT VIOLATION: %s@.") errs
