examples/quickstart.ml: Format Int64 Kernel List Perms Protocol Semperos System Vpe
