examples/pipeline.ml: Format Int64 Pipe Semperos System
