examples/migration.mli:
