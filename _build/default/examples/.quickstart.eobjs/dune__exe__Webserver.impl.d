examples/webserver.ml: Format Nginx_bench Semperos
