examples/file_workload.mli:
