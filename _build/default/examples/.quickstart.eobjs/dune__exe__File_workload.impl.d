examples/file_workload.ml: Experiment Format Fs_client List M3fs Semperos System Workloads
