examples/cow_snapshot.ml: Format Int64 List Perms Protocol Semperos System Vpe
