examples/quickstart.mli:
