examples/pipeline.mli:
