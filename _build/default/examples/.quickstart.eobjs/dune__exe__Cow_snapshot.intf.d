examples/cow_snapshot.mli:
