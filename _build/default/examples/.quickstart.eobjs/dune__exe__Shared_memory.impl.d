examples/shared_memory.ml: Dtu Format Fun Int64 Kernel List Mapdb Perms Protocol Semperos System Vpe
