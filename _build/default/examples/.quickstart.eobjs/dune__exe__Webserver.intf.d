examples/webserver.mli:
