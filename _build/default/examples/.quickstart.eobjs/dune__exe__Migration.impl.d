examples/migration.ml: Audit Capspace Format Int64 List Perms Protocol Semperos System Vpe
