(* A two-stage pipeline over the zero-copy pipe service: a producer in
   one PE group streams data to a consumer in another, through a shared
   ring buffer obtained as a memory capability. The kernel is involved
   only to establish the channel; the bytes never touch it.

   Run with: dune exec examples/pipeline.exe *)

open Semperos

let total_bytes = 1024 * 1024
let chunk = 16 * 1024

let ok = function
  | Ok v -> v
  | Error e -> failwith e

let () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:4 ()) in
  let service = Pipe.create sys ~kernel:0 ~name:"pipes" () in

  let producer_vpe = System.spawn_vpe sys ~kernel:0 in
  let consumer_vpe = System.spawn_vpe sys ~kernel:1 in

  let consumed = ref 0 in
  let finished = ref false in
  Pipe.Endpoint.connect sys service ~vpe:producer_vpe (fun p ->
      let producer = ok p in
      Pipe.Endpoint.create_pipe producer "stage1" (fun r ->
          ok r;
          Pipe.Endpoint.open_pipe producer "stage1" ~role:`Producer (fun wp ->
              let wp = ok wp in
              Pipe.Endpoint.connect sys service ~vpe:consumer_vpe (fun c ->
                  let consumer = ok c in
                  Pipe.Endpoint.open_pipe consumer "stage1" ~role:`Consumer (fun rp ->
                      let rp = ok rp in
                      (* Producer: pump chunks until done, then close. *)
                      let rec produce sent =
                        if sent >= total_bytes then
                          Pipe.Endpoint.close producer ~pipe:wp (fun r -> ok r)
                        else
                          Pipe.Endpoint.send producer ~pipe:wp ~bytes:chunk (fun r ->
                              ok r;
                              produce (sent + chunk))
                      in
                      (* Consumer: drain until EOF. *)
                      let rec consume () =
                        Pipe.Endpoint.recv consumer ~pipe:rp ~bytes:chunk (fun r ->
                            match ok r with
                            | 0 ->
                              Pipe.Endpoint.close consumer ~pipe:rp (fun r ->
                                  ok r;
                                  finished := true)
                            | n ->
                              consumed := !consumed + n;
                              consume ())
                      in
                      produce 0;
                      consume ())))));
  let t0 = System.now sys in
  ignore (System.run sys);
  assert !finished;
  let cycles = Int64.sub (System.now sys) t0 in
  Format.printf "streamed %d KiB across PE groups in %.1f us (%.1f MiB/s at 2 GHz)@."
    (!consumed / 1024)
    (Int64.to_float cycles /. 2000.0)
    (float_of_int !consumed /. (Int64.to_float cycles /. 2.0e9) /. 1048576.0);
  let s = Pipe.stats service in
  Format.printf "service work: %d pipe, %d capability grants, %d revocations — zero data touched@."
    s.Pipe.pipes_created s.Pipe.grants s.Pipe.revoke_calls;

  (* Tear the whole system down: every capability must come back. *)
  let leaked = System.shutdown sys in
  Format.printf "graceful shutdown: %d capabilities leaked@." leaked;
  assert (leaked = 0)
