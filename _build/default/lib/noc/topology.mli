(** Network-on-chip topology.

    The paper's system is a rack-scale NoC connecting up to 640 PEs;
    we model a 2D mesh with XY (dimension-ordered) routing, the layout
    prevalent in current manycores (§2.2 of the paper). *)

type t

(** [mesh ~width ~height] is a [width * height] mesh; PE [i] sits at
    [(i mod width, i / width)]. Raises on non-positive dimensions. *)
val mesh : width:int -> height:int -> t

(** [square n] is the smallest square mesh holding at least [n] PEs. *)
val square : int -> t

val pe_count : t -> int
val width : t -> int
val height : t -> int

(** Coordinates of a PE. Raises [Invalid_argument] if out of range. *)
val coords : t -> int -> int * int

(** Manhattan distance between two PEs (the hop count of XY routing). *)
val hops : t -> int -> int -> int
