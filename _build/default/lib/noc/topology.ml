type t = { width : int; height : int }

let mesh ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Topology.mesh: non-positive dimension";
  { width; height }

let square n =
  if n <= 0 then invalid_arg "Topology.square: non-positive size";
  let rec side s = if s * s >= n then s else side (s + 1) in
  let s = side 1 in
  { width = s; height = s }

let pe_count t = t.width * t.height
let width t = t.width
let height t = t.height

let coords t pe =
  if pe < 0 || pe >= pe_count t then invalid_arg "Topology.coords: PE out of range";
  (pe mod t.width, pe / t.width)

let hops t a b =
  let xa, ya = coords t a and xb, yb = coords t b in
  abs (xa - xb) + abs (ya - yb)
