(** Message transport over the NoC.

    Latency model: [base + hop_cost * hops + bytes / bytes_per_cycle].
    Delivery between a fixed (src, dst) pair is FIFO — the paper's
    distributed capability protocols *require* pairwise message ordering
    (§4.3.1), so the fabric enforces it even for mixed message sizes. *)

type config = {
  base_cycles : int;          (** fixed per-message overhead *)
  hop_cycles : int;           (** added per mesh hop *)
  bytes_per_cycle : int;      (** serialisation bandwidth *)
}

(** Defaults calibrated for the Table 3 microbenchmarks. *)
val default_config : config

type t

val create : Semper_sim.Engine.t -> Topology.t -> config -> t

val topology : t -> Topology.t
val engine : t -> Semper_sim.Engine.t

(** [send t ~src ~dst ~bytes k] delivers after the modelled latency and
    then runs [k]. Raises if [src]/[dst] are out of range or [bytes]
    is negative. *)
val send : t -> src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit

(** Latency in cycles that [send] would charge for this message. *)
val latency : t -> src:int -> dst:int -> bytes:int -> int64

(** Messages delivered so far. *)
val messages : t -> int

(** Total payload bytes carried so far. *)
val bytes_carried : t -> int

(** Total hop-traversals so far (traffic proxy). *)
val hops_traversed : t -> int
