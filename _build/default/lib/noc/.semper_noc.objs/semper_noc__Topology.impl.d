lib/noc/topology.ml:
