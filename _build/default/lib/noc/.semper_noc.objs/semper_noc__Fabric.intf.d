lib/noc/fabric.mli: Semper_sim Topology
