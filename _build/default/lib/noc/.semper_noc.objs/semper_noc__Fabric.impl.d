lib/noc/fabric.ml: Hashtbl Int64 Semper_sim Topology
