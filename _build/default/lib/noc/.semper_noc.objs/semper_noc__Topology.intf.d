lib/noc/topology.mli:
