type config = { base_cycles : int; hop_cycles : int; bytes_per_cycle : int }

let default_config = { base_cycles = 330; hop_cycles = 4; bytes_per_cycle = 16 }

type t = {
  engine : Semper_sim.Engine.t;
  topology : Topology.t;
  config : config;
  (* Last scheduled delivery time per (src, dst), to enforce pairwise FIFO. *)
  last_delivery : (int * int, int64) Hashtbl.t;
  mutable messages : int;
  mutable bytes : int;
  mutable hops : int;
}

let create engine topology config =
  if config.base_cycles < 0 || config.hop_cycles < 0 || config.bytes_per_cycle <= 0 then
    invalid_arg "Fabric.create: invalid config";
  { engine; topology; config; last_delivery = Hashtbl.create 64; messages = 0; bytes = 0; hops = 0 }

let topology t = t.topology
let engine t = t.engine

let latency t ~src ~dst ~bytes =
  if bytes < 0 then invalid_arg "Fabric.latency: negative size";
  let hops = Topology.hops t.topology src dst in
  let c = t.config in
  Int64.of_int (c.base_cycles + (c.hop_cycles * hops) + (bytes / c.bytes_per_cycle))

let send t ~src ~dst ~bytes k =
  let lat = latency t ~src ~dst ~bytes in
  let now = Semper_sim.Engine.now t.engine in
  let arrival = Int64.add now lat in
  (* FIFO per channel: never deliver before a previously sent message. *)
  let arrival =
    match Hashtbl.find_opt t.last_delivery (src, dst) with
    | Some prev when Int64.compare prev arrival > 0 -> prev
    | Some _ | None -> arrival
  in
  Hashtbl.replace t.last_delivery (src, dst) arrival;
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + bytes;
  t.hops <- t.hops + Topology.hops t.topology src dst;
  Semper_sim.Engine.at t.engine arrival k

let messages t = t.messages
let bytes_carried t = t.bytes
let hops_traversed t = t.hops
