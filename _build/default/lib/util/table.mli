(** ASCII table and data-series rendering for benchmark output.

    The bench harness prints the same rows and series the paper reports;
    these helpers keep that output aligned and uniform. *)

(** [render ~header rows] is an aligned ASCII table. Each row must have
    the same arity as [header]. *)
val render : header:string list -> string list list -> string

(** [print ~title ~header rows] renders to stdout with a title line. *)
val print : title:string -> header:string list -> string list list -> unit

(** A named data series for figure-style output: one x column and one
    column per series. *)
module Series : sig
  type t

  (** [create ~x_label ~labels] with one label per series. *)
  val create : x_label:string -> labels:string list -> t

  (** [add_row t ~x ys] appends a row; [ys] uses [None] for a missing
      point (rendered as "-"). *)
  val add_row : t -> x:float -> float option list -> unit

  val render : t -> string
  val print : title:string -> t -> unit
end
