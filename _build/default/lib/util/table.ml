let render ~header rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Table.render: row arity differs from header")
    rows;
  let all = header :: rows in
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let print ~title ~header rows =
  Printf.printf "\n== %s ==\n%s\n" title (render ~header rows)

module Series = struct
  type t = {
    x_label : string;
    labels : string list;
    mutable rows : (float * float option list) list; (* reversed *)
  }

  let create ~x_label ~labels = { x_label; labels; rows = [] }

  let add_row t ~x ys =
    if List.length ys <> List.length t.labels then
      invalid_arg "Series.add_row: arity differs from labels";
    t.rows <- (x, ys) :: t.rows

  let fmt_num v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.2f" v

  let render t =
    let header = t.x_label :: t.labels in
    let rows =
      List.rev_map
        (fun (x, ys) ->
          fmt_num x
          :: List.map (function None -> "-" | Some y -> fmt_num y) ys)
        t.rows
    in
    render ~header rows

  let print ~title t = Printf.printf "\n== %s ==\n%s\n" title (render t)
end
