type 'a t = {
  mutable data : 'a array;
  mutable size : int;
  dummy : 'a;
  compare : 'a -> 'a -> int;
}

let create ~dummy ~compare = { data = Array.make 16 dummy; size = 0; dummy; compare }

let length h = h.size

let is_empty h = h.size = 0

let grow h =
  let data = Array.make (2 * Array.length h.data) h.dummy in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let push h x =
  if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  (* Sift the new element up to its place. *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if h.compare h.data.(i) h.data.(parent) < 0 then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(parent);
        h.data.(parent) <- tmp;
        up parent
      end
    end
  in
  up (h.size - 1)

let pop h =
  if h.size = 0 then invalid_arg "Heap.pop: empty heap";
  let root = h.data.(0) in
  h.size <- h.size - 1;
  h.data.(0) <- h.data.(h.size);
  h.data.(h.size) <- h.dummy;
  (* Sift the moved element down to its place. *)
  let rec down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = if l < h.size && h.compare h.data.(l) h.data.(i) < 0 then l else i in
    let smallest =
      if r < h.size && h.compare h.data.(r) h.data.(smallest) < 0 then r else smallest
    in
    if smallest <> i then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(smallest);
      h.data.(smallest) <- tmp;
      down smallest
    end
  in
  down 0;
  root

let peek h = if h.size = 0 then None else Some h.data.(0)

let clear h =
  for i = 0 to h.size - 1 do
    h.data.(i) <- h.dummy
  done;
  h.size <- 0

let fold f acc h =
  let acc = ref acc in
  for i = 0 to h.size - 1 do
    acc := f !acc h.data.(i)
  done;
  !acc
