(** Imperative binary min-heap.

    Used as the event queue of the discrete-event engine, where it must
    sustain millions of push/pop operations; hence a flat-array
    implementation rather than a functional one. *)

type 'a t

(** [create ~dummy ~compare] is an empty heap ordered by [compare].
    [dummy] is used to fill unused array slots and is never returned. *)
val create : dummy:'a -> compare:('a -> 'a -> int) -> 'a t

(** Number of elements currently in the heap. *)
val length : 'a t -> int

(** [is_empty h] is [length h = 0]. *)
val is_empty : 'a t -> bool

(** Insert an element. Amortised O(log n). *)
val push : 'a t -> 'a -> unit

(** Remove and return the minimum element. Raises [Invalid_argument]
    on an empty heap. *)
val pop : 'a t -> 'a

(** Return the minimum element without removing it, or [None]. *)
val peek : 'a t -> 'a option

(** Remove all elements. *)
val clear : 'a t -> unit

(** Fold over the elements in unspecified order. *)
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
