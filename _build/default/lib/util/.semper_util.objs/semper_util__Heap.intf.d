lib/util/heap.mli:
