lib/util/rng.mli:
