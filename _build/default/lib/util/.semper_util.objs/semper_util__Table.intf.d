lib/util/table.mli:
