lib/util/stats.mli:
