(** Trace serialisation.

    The paper's methodology records application traces once and replays
    them many times (§5.3.1). This module gives traces a stable,
    line-oriented text format so recorded or generated traces can be
    stored, inspected, edited, and replayed later.

    Format: a header line, one directive per line, '#' comments.

    {v
    trace tar
    file /src/f1 131072
    compute 140000
    open /src/f1 r
    read 0 262144
    write 1 262144
    seek 0 4096
    stat /src/f1
    stat! /tree/needle
    mkdir /mail
    unlink /mail/msg0
    list /tree
    close 0
    v} *)

(** Serialise a trace to the text format. *)
val to_string : Trace.t -> string

(** Parse the text format. Errors name the offending line. *)
val of_string : string -> (Trace.t, string) result

(** Convenience file I/O. *)
val save : string -> Trace.t -> unit

val load : string -> (Trace.t, string) result
