type op =
  | Compute of int64
  | Open of { path : string; write : bool; create : bool }
  | Read of { slot : int; bytes : int }
  | Write of { slot : int; bytes : int }
  | Seek of { slot : int; pos : int64 }
  | Close of { slot : int }
  | Stat of string
  | Stat_absent of string
  | Mkdir of string
  | Unlink of string
  | List of string

let op_name = function
  | Compute _ -> "compute"
  | Open _ -> "open"
  | Read _ -> "read"
  | Write _ -> "write"
  | Seek _ -> "seek"
  | Close _ -> "close"
  | Stat _ -> "stat"
  | Stat_absent _ -> "stat_absent"
  | Mkdir _ -> "mkdir"
  | Unlink _ -> "unlink"
  | List _ -> "list"

type t = { name : string; ops : op list; files : (string * int64) list }

let io_ops t =
  List.length (List.filter (function Compute _ -> false | _ -> true) t.ops)

let compute_cycles t =
  List.fold_left (fun acc op -> match op with Compute c -> Int64.add acc c | _ -> acc) 0L t.ops

let scale_compute f t =
  if f < 1.0 then invalid_arg "Trace.scale_compute: factor below 1";
  let ops =
    List.map
      (fun op ->
        match op with
        | Compute c -> Compute (Int64.of_float (Int64.to_float c *. f))
        | Open _ | Read _ | Write _ | Seek _ | Close _ | Stat _ | Stat_absent _ | Mkdir _
        | Unlink _ | List _ ->
          op)
      t.ops
  in
  { t with ops }

let with_prefix prefix t =
  let p path = prefix ^ path in
  let ops =
    List.map
      (fun op ->
        match op with
        | Open o -> Open { o with path = p o.path }
        | Stat path -> Stat (p path)
        | Stat_absent path -> Stat_absent (p path)
        | Mkdir path -> Mkdir (p path)
        | Unlink path -> Unlink (p path)
        | List path -> List (p path)
        | Compute _ | Read _ | Write _ | Seek _ | Close _ -> op)
      t.ops
  in
  { t with ops; files = List.map (fun (path, size) -> (p path, size)) t.files }

let pp ppf t =
  Format.fprintf ppf "trace %s: %d ops (%d I/O, %Ld compute cycles)" t.name (List.length t.ops)
    (io_ops t) (compute_cycles t)
