(** Syscall-trace recorder (the paper's tracing infrastructure, §5.3.1:
    "run an application, trace the system calls including timing
    information, and replay the trace").

    Wrap an m3fs client; drive the application through the wrapper; the
    recorder logs every filesystem operation plus the compute gaps
    between them (measured on the simulation clock) and yields a
    {!Trace.t} that {!Replay.run} — or a saved file via {!Trace_io} —
    can reproduce. *)

type t

(** [create sys ~name client] starts recording on top of [client]. *)
val create : Semper_kernel.System.t -> name:string -> Semper_m3fs.Client.t -> t

(** Snapshot the trace recorded so far. Files opened during recording
    are listed with the size observed at open, so a fresh image can be
    pre-populated for replay. *)
val trace : t -> Trace.t

(** Mirrored client operations: identical behaviour, plus recording.
    The returned handles are the recorder's slot numbers, already in
    trace terms. *)

val open_ : t -> string -> write:bool -> create:bool -> ((int, string) result -> unit) -> unit
val read : t -> slot:int -> bytes:int -> ((int, string) result -> unit) -> unit
val write : t -> slot:int -> bytes:int -> ((unit, string) result -> unit) -> unit
val seek : t -> slot:int -> pos:int64 -> (unit, string) result
val close : t -> slot:int -> ((unit, string) result -> unit) -> unit
val stat : t -> string -> ((unit, string) result -> unit) -> unit
val mkdir : t -> string -> ((unit, string) result -> unit) -> unit
val unlink : t -> string -> ((unit, string) result -> unit) -> unit
val list : t -> string -> ((string list, string) result -> unit) -> unit
