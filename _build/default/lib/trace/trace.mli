(** Syscall traces.

    The paper traces applications on Linux and replays the traces on
    SemperOS "while checking for correct execution", charging the time
    of unsupported calls as waits (§5.3.1). We generate the traces
    synthetically (see [Workloads]) with the same structure: filesystem
    operations interleaved with compute periods. *)

type op =
  | Compute of int64  (** app-local computation, cycles *)
  | Open of { path : string; write : bool; create : bool }
      (** opens push descriptors onto a replay-time slot table *)
  | Read of { slot : int; bytes : int }
  | Write of { slot : int; bytes : int }
  | Seek of { slot : int; pos : int64 }
  | Close of { slot : int }
  | Stat of string
  | Stat_absent of string
      (** stat expected to fail (e.g. find probing for a missing file) *)
  | Mkdir of string
  | Unlink of string
  | List of string

val op_name : op -> string

type t = {
  name : string;
  ops : op list;
  files : (string * int64) list;
      (** files that must pre-exist in the filesystem image *)
}

(** Number of non-compute operations. *)
val io_ops : t -> int

(** Sum of [Compute] cycles. *)
val compute_cycles : t -> int64

(** [scale_compute f t] multiplies every [Compute] period by [f] —
    the harness's memory-system contention model stretches app-local
    work as more cores become active. *)
val scale_compute : float -> t -> t

(** Prefix every path in the trace (ops and files) — used to give each
    benchmark instance a private namespace, as each parallel instance
    in the paper replays its own trace against its own files. *)
val with_prefix : string -> t -> t

val pp : Format.formatter -> t -> unit
