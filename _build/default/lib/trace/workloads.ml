module M3fs = Semper_m3fs.M3fs

let kib n = Int64.of_int (n * 1024)
let mib n = Int64.of_int (n * 1024 * 1024)

type spec = {
  name : string;
  fs_config : M3fs.config;
  paper_cap_ops : int;
  paper_cap_ops_per_s : int;
  mem_sensitivity : float;
  build : unit -> Trace.t;
}

let fs_config ~extent_size = { M3fs.default_config with M3fs.extent_size }

(* ------------------------------------------------------------------ *)
(* tar: pack five files (128..2048 KiB) into a 4 MiB archive. The
   archive pre-exists (tar overwrites its previous output), so writes
   reuse extents instead of allocating; reads and writes interleave in
   256 KiB chunks with uniform compute between them — the "memory-bound
   application exposing a regular read and write pattern". *)

let tar_inputs =
  [ ("/src/f1", kib 128); ("/src/f2", kib 256); ("/src/f3", kib 512); ("/src/f4", kib 1024);
    ("/src/f5", kib 2048) ]

let tar =
  let build () =
    let chunk = 256 * 1024 in
    let pad = Trace.Compute 290_000L in
    let ops = ref [] in
    let emit op = ops := op :: !ops in
    emit (Trace.Open { path = "/out/archive.tar"; write = true; create = false });
    let archive_slot = 0 in
    List.iteri
      (fun i (path, size) ->
        emit (Trace.Stat path);
        emit (Trace.Open { path; write = false; create = false });
        let slot = 1 + i in
        let rec copy remaining =
          if remaining > 0L then begin
            let n = Int64.to_int (min remaining (Int64.of_int chunk)) in
            emit (Trace.Read { slot; bytes = n });
            emit pad;
            emit (Trace.Write { slot = archive_slot; bytes = n });
            copy (Int64.sub remaining (Int64.of_int n))
          end
        in
        copy size;
        emit (Trace.Close { slot }))
      tar_inputs;
    emit (Trace.Close { slot = archive_slot });
    {
      Trace.name = "tar";
      ops = List.rev !ops;
      files = ("/out/archive.tar", mib 4) :: tar_inputs;
    }
  in
  {
    name = "tar";
    mem_sensitivity = 1.0;
    fs_config = fs_config ~extent_size:(mib 1);
    paper_cap_ops = 21;
    paper_cap_ops_per_s = 7295;
    build;
  }

(* ------------------------------------------------------------------ *)
(* untar: unpack the archive back into the five files (which also
   pre-exist from the previous unpack). Larger ranges per capability:
   reading the archive grants one capability for the whole file. *)

let untar =
  let build () =
    let chunk = 256 * 1024 in
    let pad = Trace.Compute 275_000L in
    let ops = ref [] in
    let emit op = ops := op :: !ops in
    emit (Trace.Open { path = "/out/archive.tar"; write = false; create = false });
    List.iteri
      (fun i (path, size) ->
        emit (Trace.Open { path; write = true; create = false });
        let slot = 1 + i in
        let rec copy remaining =
          if remaining > 0L then begin
            let n = Int64.to_int (min remaining (Int64.of_int chunk)) in
            emit (Trace.Read { slot = 0; bytes = n });
            emit pad;
            emit (Trace.Write { slot; bytes = n });
            copy (Int64.sub remaining (Int64.of_int n))
          end
        in
        copy size;
        emit (Trace.Close { slot }))
      tar_inputs;
    emit (Trace.Close { slot = 0 });
    {
      Trace.name = "untar";
      ops = List.rev !ops;
      files = ("/out/archive.tar", mib 4) :: tar_inputs;
    }
  in
  {
    name = "untar";
    mem_sensitivity = 1.05;
    fs_config = fs_config ~extent_size:(mib 4);
    paper_cap_ops = 11;
    paper_cap_ops_per_s = 4012;
    build;
  }

(* ------------------------------------------------------------------ *)
(* find: scan a directory tree with 80 entries for a non-existent
   file — almost pure metadata load on the service; the only
   capability traffic is reading the tree's index file once. *)

let find =
  let dirs = 8 and files_per_dir = 9 in
  let build () =
    let pad = Trace.Compute 545_000L in
    let ops = ref [] in
    let emit op = ops := op :: !ops in
    emit (Trace.Open { path = "/tree/.index"; write = false; create = false });
    emit (Trace.Read { slot = 0; bytes = 16 * 1024 });
    emit (Trace.List "/tree");
    for d = 0 to dirs - 1 do
      let dir = Printf.sprintf "/tree/d%d" d in
      emit (Trace.List dir);
      emit pad;
      for f = 0 to files_per_dir - 1 do
        emit (Trace.Stat (Printf.sprintf "%s/f%d" dir f))
      done
    done;
    emit (Trace.Stat_absent "/tree/needle");
    emit (Trace.Close { slot = 0 });
    let files =
      ("/tree/.index", kib 16)
      :: List.concat
           (List.init dirs (fun d ->
                List.init files_per_dir (fun f -> (Printf.sprintf "/tree/d%d/f%d" d f, kib 4))))
    in
    { Trace.name = "find"; ops = List.rev !ops; files }
  in
  {
    name = "find";
    mem_sensitivity = 1.2;
    fs_config = fs_config ~extent_size:(kib 256);
    paper_cap_ops = 3;
    paper_cap_ops_per_s = 1310;
    build;
  }

(* ------------------------------------------------------------------ *)
(* SQLite: compute-intensive with bursts of capability operations when
   opening and closing the database and its journal. Seven rollback-
   journal transactions (schema + batched inserts + commit phases). *)

let sqlite =
  let transactions = 7 in
  let build () =
    let burst_gap = Trace.Compute 1_080_000L in
    let ops = ref [] in
    let emit op = ops := op :: !ops in
    emit (Trace.Open { path = "/db/main.db"; write = true; create = false });
    emit (Trace.Read { slot = 0; bytes = 4096 });  (* header page *)
    let slot = ref 1 in
    for _txn = 1 to transactions do
      emit burst_gap;
      emit (Trace.Open { path = "/db/main.db-journal"; write = true; create = true });
      let j = !slot in
      incr slot;
      emit (Trace.Write { slot = j; bytes = 32 * 1024 });
      emit (Trace.Seek { slot = 0; pos = 0L });
      emit (Trace.Write { slot = 0; bytes = 16 * 1024 });
      emit (Trace.Close { slot = j });
      emit (Trace.Unlink "/db/main.db-journal")
    done;
    emit (Trace.Compute 300_000L);
    emit (Trace.Seek { slot = 0; pos = 0L });
    emit (Trace.Read { slot = 0; bytes = 64 * 1024 });  (* select scan *)
    emit (Trace.Close { slot = 0 });
    { Trace.name = "sqlite"; ops = List.rev !ops; files = [ ("/db/main.db", kib 512) ] }
  in
  {
    name = "sqlite";
    mem_sensitivity = 1.45;
    (* SQLite's journal open/commit/unlink cycle is expensive at the
       filesystem: it is the most service-dependent workload in the
       paper (Figure 7b). *)
    fs_config =
      {
        (fs_config ~extent_size:(mib 1)) with
        M3fs.cost_open = 7_500L;
        cost_dir = 7_500L;
        cost_close = 5_000L;
        cost_grant = 4_500L;
      };
    paper_cap_ops = 24;
    paper_cap_ops_per_s = 5987;
    build;
  }

(* ------------------------------------------------------------------ *)
(* LevelDB: the same logical workload as SQLite but with higher-
   frequency data-file access — log appends plus repeated SST reads. *)

let leveldb =
  let sst_files = 5 and sst_reads = 7 in
  let build () =
    let pad = Trace.Compute 630_000L in
    let ops = ref [] in
    let emit op = ops := op :: !ops in
    emit (Trace.Open { path = "/ldb/CURRENT"; write = false; create = false });
    emit (Trace.Read { slot = 0; bytes = 4096 });
    emit (Trace.Close { slot = 0 });
    emit (Trace.Open { path = "/ldb/MANIFEST"; write = false; create = false });
    emit (Trace.Read { slot = 1; bytes = 64 * 1024 });
    emit (Trace.Close { slot = 1 });
    emit (Trace.Open { path = "/ldb/000042.log"; write = true; create = true });
    let log = 2 in
    for _insert = 1 to 8 do
      emit (Trace.Write { slot = log; bytes = 16 * 1024 });
      emit (Trace.Compute 45_000L)
    done;
    let slot = ref 3 in
    for r = 0 to sst_reads - 1 do
      let sst = Printf.sprintf "/ldb/%06d.sst" (r mod sst_files) in
      emit (Trace.Open { path = sst; write = false; create = false });
      emit (Trace.Read { slot = !slot; bytes = 128 * 1024 });
      emit (Trace.Close { slot = !slot });
      incr slot;
      emit pad
    done;
    emit (Trace.Close { slot = log });
    let files =
      ("/ldb/CURRENT", kib 4) :: ("/ldb/MANIFEST", kib 64)
      :: List.init sst_files (fun i -> (Printf.sprintf "/ldb/%06d.sst" i, kib 256))
    in
    { Trace.name = "leveldb"; ops = List.rev !ops; files }
  in
  {
    name = "leveldb";
    mem_sensitivity = 1.1;
    fs_config = fs_config ~extent_size:(kib 256);
    paper_cap_ops = 22;
    paper_cap_ops_per_s = 8749;
    build;
  }

(* ------------------------------------------------------------------ *)
(* PostMark: a heavily loaded mail server — many small-file create /
   write / read / delete cycles and very little computation, producing
   the highest capability-operation rate of all workloads. *)

let postmark =
  let creates = 10 and reads = 3 in
  let build () =
    let pad = Trace.Compute 348_000L in
    let ops = ref [] in
    let emit op = ops := op :: !ops in
    emit (Trace.Mkdir "/mail");
    let slot = ref 0 in
    for i = 0 to creates - 1 do
      let path = Printf.sprintf "/mail/msg%d" i in
      emit (Trace.Open { path; write = true; create = true });
      emit (Trace.Write { slot = !slot; bytes = 8 * 1024 });
      emit (Trace.Close { slot = !slot });
      incr slot;
      emit pad
    done;
    for i = 0 to reads - 1 do
      let path = Printf.sprintf "/mail/msg%d" (i * 3) in
      emit (Trace.Open { path; write = false; create = false });
      emit (Trace.Read { slot = !slot; bytes = 8 * 1024 });
      emit (Trace.Close { slot = !slot });
      incr slot
    done;
    (* One mailbox append to an existing message. *)
    emit (Trace.Open { path = "/mail/msg1"; write = true; create = false });
    emit (Trace.Write { slot = !slot; bytes = 4 * 1024 });
    emit (Trace.Close { slot = !slot });
    incr slot;
    for i = 0 to creates - 1 do
      emit (Trace.Unlink (Printf.sprintf "/mail/msg%d" i))
    done;
    { Trace.name = "postmark"; ops = List.rev !ops; files = [] }
  in
  {
    name = "postmark";
    mem_sensitivity = 1.0;
    fs_config = fs_config ~extent_size:(kib 256);
    paper_cap_ops = 38;
    paper_cap_ops_per_s = 21166;
    build;
  }

let all = [ tar; untar; find; sqlite; leveldb; postmark ]

let by_name name = List.find_opt (fun s -> s.name = name) all

(* ------------------------------------------------------------------ *)
(* Nginx: per-request static-file serving.                              *)

let nginx_fs_config = fs_config ~extent_size:(kib 256)

let nginx_request =
  {
    Trace.name = "nginx-request";
    ops =
      [
        Trace.Stat "/www/index.html";
        Trace.Open { path = "/www/index.html"; write = false; create = false };
        Trace.Read { slot = 0; bytes = 8 * 1024 };
        Trace.Compute 150_000L;
        Trace.Close { slot = 0 };
      ];
    files = [ ("/www/index.html", kib 8) ];
  }
