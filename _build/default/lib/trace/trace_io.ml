let op_to_line = function
  | Trace.Compute c -> Printf.sprintf "compute %Ld" c
  | Trace.Open { path; write; create } ->
    Printf.sprintf "open %s %s%s" path (if write then "w" else "r") (if create then "c" else "")
  | Trace.Read { slot; bytes } -> Printf.sprintf "read %d %d" slot bytes
  | Trace.Write { slot; bytes } -> Printf.sprintf "write %d %d" slot bytes
  | Trace.Seek { slot; pos } -> Printf.sprintf "seek %d %Ld" slot pos
  | Trace.Close { slot } -> Printf.sprintf "close %d" slot
  | Trace.Stat path -> Printf.sprintf "stat %s" path
  | Trace.Stat_absent path -> Printf.sprintf "stat! %s" path
  | Trace.Mkdir path -> Printf.sprintf "mkdir %s" path
  | Trace.Unlink path -> Printf.sprintf "unlink %s" path
  | Trace.List path -> Printf.sprintf "list %s" path

let to_string (t : Trace.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("trace " ^ t.Trace.name ^ "\n");
  List.iter
    (fun (path, size) -> Buffer.add_string buf (Printf.sprintf "file %s %Ld\n" path size))
    t.Trace.files;
  List.iter (fun op -> Buffer.add_string buf (op_to_line op ^ "\n")) t.Trace.ops;
  Buffer.contents buf

let split_words line =
  String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let parse_int64 lineno w =
  match Int64.of_string_opt w with
  | Some v when Int64.compare v 0L >= 0 -> Ok v
  | Some _ | None -> Error (Printf.sprintf "line %d: expected a non-negative number, got %S" lineno w)

let parse_int lineno w =
  match int_of_string_opt w with
  | Some v when v >= 0 -> Ok v
  | Some _ | None -> Error (Printf.sprintf "line %d: expected a non-negative number, got %S" lineno w)

let ( let* ) = Result.bind

let parse_line lineno words =
  match words with
  | [ "compute"; c ] ->
    let* c = parse_int64 lineno c in
    Ok (`Op (Trace.Compute c))
  | [ "open"; path; flags ] ->
    let write = String.contains flags 'w' in
    let create = String.contains flags 'c' in
    if String.exists (fun c -> c <> 'r' && c <> 'w' && c <> 'c') flags then
      Error (Printf.sprintf "line %d: bad open flags %S" lineno flags)
    else Ok (`Op (Trace.Open { path; write; create }))
  | [ "read"; slot; bytes ] ->
    let* slot = parse_int lineno slot in
    let* bytes = parse_int lineno bytes in
    Ok (`Op (Trace.Read { slot; bytes }))
  | [ "write"; slot; bytes ] ->
    let* slot = parse_int lineno slot in
    let* bytes = parse_int lineno bytes in
    Ok (`Op (Trace.Write { slot; bytes }))
  | [ "seek"; slot; pos ] ->
    let* slot = parse_int lineno slot in
    let* pos = parse_int64 lineno pos in
    Ok (`Op (Trace.Seek { slot; pos }))
  | [ "close"; slot ] ->
    let* slot = parse_int lineno slot in
    Ok (`Op (Trace.Close { slot }))
  | [ "stat"; path ] -> Ok (`Op (Trace.Stat path))
  | [ "stat!"; path ] -> Ok (`Op (Trace.Stat_absent path))
  | [ "mkdir"; path ] -> Ok (`Op (Trace.Mkdir path))
  | [ "unlink"; path ] -> Ok (`Op (Trace.Unlink path))
  | [ "list"; path ] -> Ok (`Op (Trace.List path))
  | [ "file"; path; size ] ->
    let* size = parse_int64 lineno size in
    Ok (`File (path, size))
  | [ "trace"; name ] -> Ok (`Name name)
  | w :: _ -> Error (Printf.sprintf "line %d: unknown directive %S" lineno w)
  | [] -> Ok `Blank

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno name files ops = function
    | [] -> (
      match name with
      | None -> Error "missing 'trace <name>' header"
      | Some name -> Ok { Trace.name; ops = List.rev ops; files = List.rev files })
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      match parse_line lineno (split_words line) with
      | Error e -> Error e
      | Ok `Blank -> go (lineno + 1) name files ops rest
      | Ok (`Name n) -> (
        match name with
        | None -> go (lineno + 1) (Some n) files ops rest
        | Some _ -> Error (Printf.sprintf "line %d: duplicate trace header" lineno))
      | Ok (`File f) -> go (lineno + 1) name (f :: files) ops rest
      | Ok (`Op op) -> go (lineno + 1) name files (op :: ops) rest)
  in
  go 1 None [] [] lines

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (In_channel.input_all ic))
