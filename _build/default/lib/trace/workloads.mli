(** Synthetic workload generators for the paper's seven applications
    (§5.3.1, Table 4).

    We do not have the authors' Linux syscall traces, so each generator
    reproduces the *pattern* the paper describes for its application —
    which files are touched, how capability operations cluster, how much
    compute separates them — parameterised so the per-instance
    capability-operation counts land close to Table 4 and the
    single-instance runtime close to the paper's implied duration
    (cap ops ÷ cap ops/s at 2 GHz). EXPERIMENTS.md records the match. *)

type spec = {
  name : string;
  fs_config : Semper_m3fs.M3fs.config;
      (** per-workload filesystem configuration (extent size controls
          how much data one handed-out capability covers) *)
  paper_cap_ops : int;       (** Table 4, single instance *)
  paper_cap_ops_per_s : int; (** Table 4, single instance *)
  mem_sensitivity : float;
      (** how strongly this workload feels memory-system contention
          relative to the average (1.0); compute/memory-heavy apps like
          SQLite degrade more as cores become active *)
  build : unit -> Trace.t;
}

(** tar: packs a 4 MiB archive from five files of 128–2048 KiB;
    memory-bound, regular read/write pattern. *)
val tar : spec

(** untar: unpacks the archive into the five files. *)
val untar : spec

(** find: scans a directory tree with 80 entries for a non-existent
    file; stresses the service with stat calls, few capability ops. *)
val find : spec

(** SQLite: creates a table, inserts 8 entries, selects them; bursts of
    capability operations around journal transactions. *)
val sqlite : spec

(** LevelDB: same logical workload, but with higher-frequency data-file
    access (log appends, SST reads). *)
val leveldb : spec

(** PostMark: heavily loaded mail server; many small-file create /
    write / read / delete cycles, little computation. *)
val postmark : spec

(** All six application specs in Table 4 order. *)
val all : spec list

val by_name : string -> spec option

(** Nginx webserver: per-request trace (stat + open + read + close of a
    static file) and the files one server process needs. The request
    trace is replayed once per incoming request (§5.3.3). *)
val nginx_request : Trace.t

val nginx_fs_config : Semper_m3fs.M3fs.config
