lib/trace/replay.ml: Array Int64 List Printf Semper_kernel Semper_m3fs Semper_sim Trace
