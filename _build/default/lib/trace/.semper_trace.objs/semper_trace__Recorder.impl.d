lib/trace/recorder.ml: Int64 List Option Printf Semper_kernel Semper_m3fs Trace
