lib/trace/replay.mli: Semper_kernel Semper_m3fs Trace
