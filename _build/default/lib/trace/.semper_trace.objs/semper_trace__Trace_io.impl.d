lib/trace/trace_io.ml: Buffer Fun In_channel Int64 List Printf Result String Trace
