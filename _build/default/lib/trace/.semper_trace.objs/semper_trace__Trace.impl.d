lib/trace/trace.ml: Format Int64 List
