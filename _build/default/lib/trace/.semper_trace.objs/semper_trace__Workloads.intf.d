lib/trace/workloads.mli: Semper_m3fs Trace
