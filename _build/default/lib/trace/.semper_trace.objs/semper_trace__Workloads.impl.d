lib/trace/workloads.ml: Int64 List Printf Semper_m3fs Trace
