lib/trace/recorder.mli: Semper_kernel Semper_m3fs Trace
