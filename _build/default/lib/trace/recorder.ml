module System = Semper_kernel.System
module Client = Semper_m3fs.Client

type t = {
  sys : System.t;
  name : string;
  client : Client.t;
  mutable ops : Trace.op list;  (* reversed *)
  mutable files : (string * int64) list;  (* reversed *)
  mutable slots : (int * int) list;  (* slot -> fd *)
  mutable next_slot : int;
  mutable last_done : int64;  (* completion time of the previous op *)
}

let create sys ~name client =
  { sys; name; client; ops = []; files = []; slots = []; next_slot = 0; last_done = System.now sys }

let trace t =
  { Trace.name = t.name; ops = List.rev t.ops; files = List.rev t.files }

(* Record the compute gap since the previous operation finished, then
   the operation itself. *)
let record t op =
  let now = System.now t.sys in
  let gap = Int64.sub now t.last_done in
  if Int64.compare gap 0L > 0 then t.ops <- Trace.Compute gap :: t.ops;
  t.ops <- op :: t.ops

let finished t = t.last_done <- System.now t.sys

let fd_of_slot t slot = List.assoc_opt slot t.slots

let open_ t path ~write ~create k =
  record t (Trace.Open { path; write; create });
  Client.open_ t.client path ~write ~create (fun r ->
      finished t;
      match r with
      | Error e -> k (Error e)
      | Ok fd ->
        let slot = t.next_slot in
        t.next_slot <- slot + 1;
        t.slots <- (slot, fd) :: t.slots;
        (* Remember the file with its size at open so replay can
           pre-populate the image. *)
        let size = Option.value ~default:0L (Client.file_size t.client ~fd) in
        if not (List.mem_assoc path t.files) then t.files <- (path, size) :: t.files;
        k (Ok slot))

let with_fd t slot k f =
  match fd_of_slot t slot with
  | None -> k (Error (Printf.sprintf "recorder: unknown slot %d" slot))
  | Some fd -> f fd

let read t ~slot ~bytes k =
  record t (Trace.Read { slot; bytes });
  with_fd t slot k (fun fd ->
      Client.read t.client ~fd ~bytes (fun r ->
          finished t;
          k r))

let write t ~slot ~bytes k =
  record t (Trace.Write { slot; bytes });
  with_fd t slot k (fun fd ->
      Client.write t.client ~fd ~bytes (fun r ->
          finished t;
          k r))

let seek t ~slot ~pos =
  record t (Trace.Seek { slot; pos });
  match fd_of_slot t slot with
  | None -> Error (Printf.sprintf "recorder: unknown slot %d" slot)
  | Some fd ->
    let r = Client.seek t.client ~fd ~pos in
    finished t;
    r

let close t ~slot k =
  record t (Trace.Close { slot });
  with_fd t slot k (fun fd ->
      Client.close t.client ~fd (fun r ->
          finished t;
          k r))

let stat t path k =
  record t (Trace.Stat path);
  Client.stat t.client path (fun r ->
      finished t;
      k r)

let mkdir t path k =
  record t (Trace.Mkdir path);
  Client.mkdir t.client path (fun r ->
      finished t;
      k r)

let unlink t path k =
  record t (Trace.Unlink path);
  Client.unlink t.client path (fun r ->
      finished t;
      k r)

let list t path k =
  record t (Trace.List path);
  Client.list t.client path (fun r ->
      finished t;
      k r)
