type kernel_id = int

type t = { table : (int, kernel_id) Hashtbl.t; mutable sealed : bool }

let create () = { table = Hashtbl.create 64; sealed = false }

let assign t ~pe ~kernel =
  if t.sealed then invalid_arg "Membership.assign: table is sealed";
  if Hashtbl.mem t.table pe then invalid_arg "Membership.assign: PE already assigned";
  if pe < 0 || kernel < 0 then invalid_arg "Membership.assign: negative id";
  Hashtbl.add t.table pe kernel

let seal t = t.sealed <- true

let reassign t ~pe ~kernel =
  if not (Hashtbl.mem t.table pe) then raise Not_found;
  if kernel < 0 then invalid_arg "Membership.reassign: negative kernel";
  Hashtbl.replace t.table pe kernel
let is_sealed t = t.sealed

let kernel_of_pe t pe =
  match Hashtbl.find_opt t.table pe with
  | Some k -> k
  | None -> raise Not_found

let kernel_of_key t key = kernel_of_pe t (Key.pe key)

let pes_of_kernel t kernel =
  Hashtbl.fold (fun pe k acc -> if k = kernel then pe :: acc else acc) t.table []
  |> List.sort Int.compare

let size t = Hashtbl.length t.table

let kernels t =
  Hashtbl.fold (fun _ k acc -> if List.mem k acc then acc else k :: acc) t.table []
  |> List.sort Int.compare

let copy t = { table = Hashtbl.copy t.table; sealed = t.sealed }
