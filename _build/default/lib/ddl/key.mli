(** DDL keys: globally valid identifiers for kernel objects.

    Paper §3.2 / Figure 2: a key packs the creator's PE id and VPE id
    with the object's type and per-creator object id. The PE id is the
    partition number; the membership table maps partitions to kernels,
    so any kernel can locate the owner of any key without consulting a
    directory.

    Layout (64 bits): [pe:16][vpe:16][kind:4][object:28]. *)

type t

(** Kernel-object classes referable across kernels. *)
type kind =
  | Vpe_obj
  | Mem_obj
  | Srv_obj
  | Sess_obj
  | Sgate_obj  (** send gate: ability to send to an endpoint *)
  | Rgate_obj  (** receive gate: an owned receive endpoint *)
  | Kernel_obj

val kind_to_string : kind -> string

val max_pe : int
val max_vpe : int
val max_obj : int

(** [make ~pe ~vpe ~kind ~obj]. Raises [Invalid_argument] if a field
    exceeds its bit width. *)
val make : pe:int -> vpe:int -> kind:kind -> obj:int -> t

val pe : t -> int
val vpe : t -> int
val kind : t -> kind
val obj : t -> int

val to_int64 : t -> int64
val of_int64 : int64 -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Hashtbl over keys. *)
module Table : Hashtbl.S with type key = t
