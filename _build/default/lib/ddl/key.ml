type t = int64

type kind =
  | Vpe_obj
  | Mem_obj
  | Srv_obj
  | Sess_obj
  | Sgate_obj
  | Rgate_obj
  | Kernel_obj

let kind_to_string = function
  | Vpe_obj -> "vpe"
  | Mem_obj -> "mem"
  | Srv_obj -> "srv"
  | Sess_obj -> "sess"
  | Sgate_obj -> "sgate"
  | Rgate_obj -> "rgate"
  | Kernel_obj -> "kernel"

let kind_to_int = function
  | Vpe_obj -> 1
  | Mem_obj -> 2
  | Srv_obj -> 3
  | Sess_obj -> 4
  | Sgate_obj -> 5
  | Rgate_obj -> 6
  | Kernel_obj -> 7

let kind_of_int = function
  | 1 -> Vpe_obj
  | 2 -> Mem_obj
  | 3 -> Srv_obj
  | 4 -> Sess_obj
  | 5 -> Sgate_obj
  | 6 -> Rgate_obj
  | 7 -> Kernel_obj
  | n -> invalid_arg (Printf.sprintf "Key.kind_of_int: %d" n)

let max_pe = (1 lsl 16) - 1
let max_vpe = (1 lsl 16) - 1
let max_obj = (1 lsl 28) - 1

let make ~pe ~vpe ~kind ~obj =
  if pe < 0 || pe > max_pe then invalid_arg "Key.make: pe out of range";
  if vpe < 0 || vpe > max_vpe then invalid_arg "Key.make: vpe out of range";
  if obj < 0 || obj > max_obj then invalid_arg "Key.make: obj out of range";
  let open Int64 in
  logor
    (shift_left (of_int pe) 48)
    (logor
       (shift_left (of_int vpe) 32)
       (logor (shift_left (of_int (kind_to_int kind)) 28) (of_int obj)))

let pe t = Int64.to_int (Int64.logand (Int64.shift_right_logical t 48) 0xFFFFL)
let vpe t = Int64.to_int (Int64.logand (Int64.shift_right_logical t 32) 0xFFFFL)
let kind t = kind_of_int (Int64.to_int (Int64.logand (Int64.shift_right_logical t 28) 0xFL))
let obj t = Int64.to_int (Int64.logand t 0xFFFFFFFL)

let to_int64 t = t
let of_int64 v = ignore (kind v); v

let equal = Int64.equal
let compare = Int64.compare
let hash t = Int64.to_int (Int64.logxor t (Int64.shift_right_logical t 32)) land max_int

let to_string t =
  Printf.sprintf "%d:%d:%s:%d" (pe t) (vpe t) (kind_to_string (kind t)) (obj t)

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
