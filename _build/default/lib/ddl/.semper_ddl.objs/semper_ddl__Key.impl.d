lib/ddl/key.ml: Format Hashtbl Int64 Printf
