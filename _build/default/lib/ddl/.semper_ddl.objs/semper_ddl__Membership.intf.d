lib/ddl/membership.mli: Key
