lib/ddl/key.mli: Format Hashtbl
