lib/ddl/membership.ml: Hashtbl Int Key List
