(** Membership table: partition (= PE id) to kernel mapping.

    Replicated at every kernel (paper Figure 2). The mapping is static —
    SemperOS does not support PE migration yet (§3.2), and neither do
    we; [assign] is only legal before the table is [seal]ed. *)

type kernel_id = int

type t

val create : unit -> t

(** [assign t ~pe ~kernel]. Raises [Invalid_argument] if sealed or if
    the PE is already assigned. *)
val assign : t -> pe:int -> kernel:kernel_id -> unit

(** Freeze the table; further [assign]s raise. *)
val seal : t -> unit

(** [reassign t ~pe ~kernel] moves an already-assigned PE to another
    kernel — the PE-migration path (paper §3.2: the membership mappings
    "would have to be updated at all kernels"). Allowed on sealed
    tables; raises [Not_found] if the PE was never assigned. *)
val reassign : t -> pe:int -> kernel:kernel_id -> unit

val is_sealed : t -> bool

(** Raises [Not_found] for an unassigned PE. *)
val kernel_of_pe : t -> int -> kernel_id

(** Owner kernel of a DDL key: the kernel of its partition. *)
val kernel_of_key : t -> Key.t -> kernel_id

(** PEs of a kernel's group, ascending. *)
val pes_of_kernel : t -> kernel_id -> int list

(** Number of PEs assigned overall. *)
val size : t -> int

(** All kernel ids present, ascending. *)
val kernels : t -> kernel_id list

(** Independent copy (what each kernel holds). *)
val copy : t -> t
