module P = Semper_kernel.Protocol
module System = Semper_kernel.System
module Kernel = Semper_kernel.Kernel
module Vpe = Semper_kernel.Vpe
module Cap = Semper_caps.Cap
module Perms = Semper_caps.Perms
module Capspace = Semper_caps.Capspace
module Engine = Semper_sim.Engine
module Server = Semper_sim.Server
module Fabric = Semper_noc.Fabric

type config = {
  ring_size : int;
  cost_meta : int64;
  cost_grant : int64;
  mem_bytes_per_cycle : int;
}

let default_config =
  { ring_size = 64 * 1024; cost_meta = 1800L; cost_grant = 1500L; mem_bytes_per_cycle = 8 }

type stats = {
  mutable pipes_created : int;
  mutable grants : int;
  mutable bytes_moved : int;
  mutable closes : int;
  mutable revoke_calls : int;
}

(* One named pipe: the ring buffer plus the parties parked on it. *)
type ring = {
  r_name : string;
  r_size : int;
  mutable r_used : int;
  mutable r_attached : int;
  mutable r_closed : bool;
  (* Ends parked until space (writers) or data (readers) appears. *)
  r_writers : (int * ((unit, string) result -> unit)) Queue.t;
  r_readers : (int * ((int, string) result -> unit)) Queue.t;
  mutable r_writers_attached : int;
  mutable r_ring_sel : P.selector;  (** service's ring-buffer capability *)
  (* Per-end derived capabilities and roles, revoked at close. *)
  r_ends : (int, P.selector * bool (* producer *)) Hashtbl.t;
}

type t = {
  sys : System.t;
  cfg : config;
  name : string;
  vpe : Vpe.t;
  server : Server.t;
  stats : stats;
  pipes : (string, ring) Hashtbl.t;
  by_id : (int, ring) Hashtbl.t;
  sessions : (int, int) Hashtbl.t;  (** ident -> client vpe *)
  mutable next_ident : int;
  mutable next_pipe : int;
  sys_queue : (P.syscall * (P.reply -> unit)) Queue.t;
  mutable sys_busy : bool;
}

let name t = t.name
let server t = t.server
let stats t = t.stats

(* Serialised service syscalls (one in flight per VPE). *)
let rec pump t =
  if (not t.sys_busy) && not (Queue.is_empty t.sys_queue) then begin
    let call, k = Queue.pop t.sys_queue in
    t.sys_busy <- true;
    System.syscall t.sys t.vpe call (fun r ->
        t.sys_busy <- false;
        k r;
        pump t)
  end

let service_syscall t call k =
  Queue.push (call, k) t.sys_queue;
  pump t

(* ------------------------------------------------------------------ *)
(* Ring-buffer flow control                                             *)

(* A consumer sees EOF once every producer has closed and the ring is
   drained. *)
let at_eof ring = ring.r_closed || (ring.r_writers_attached = 0 && ring.r_used = 0)

(* Retry parked parties after the ring state changed. *)
let rec wake t (ring : ring) =
  let progressed = ref false in
  (match Queue.peek_opt ring.r_writers with
  | Some (bytes, k) when ring.r_used + bytes <= ring.r_size ->
    ignore (Queue.pop ring.r_writers);
    ring.r_used <- ring.r_used + bytes;
    t.stats.bytes_moved <- t.stats.bytes_moved + bytes;
    progressed := true;
    k (Ok ())
  | Some (_, k) when ring.r_closed ->
    ignore (Queue.pop ring.r_writers);
    progressed := true;
    k (Error "pipe closed")
  | Some _ | None -> ());
  (match Queue.peek_opt ring.r_readers with
  | Some (bytes, k) when ring.r_used > 0 ->
    ignore (Queue.pop ring.r_readers);
    let n = min bytes ring.r_used in
    ring.r_used <- ring.r_used - n;
    progressed := true;
    k (Ok n)
  | Some (_, k) when at_eof ring ->
    ignore (Queue.pop ring.r_readers);
    progressed := true;
    k (Ok 0)
  | Some _ | None -> ());
  if !progressed then wake t ring

(* ------------------------------------------------------------------ *)
(* Kernel upcalls                                                       *)

let handle_upcall t (req : P.service_request) k =
  match req with
  | P.Srq_open_session { client_vpe } ->
    Server.submit t.server ~cost:t.cfg.cost_meta (fun () ->
        let ident = t.next_ident in
        t.next_ident <- ident + 1;
        Hashtbl.add t.sessions ident client_vpe;
        k (P.Srs_session { ident }))
  | P.Srq_obtain { ident; args } ->
    Server.submit t.server ~cost:t.cfg.cost_grant (fun () ->
        if not (Hashtbl.mem t.sessions ident) then k (P.Srs_reject P.E_no_such_session)
        else
          match args with
          | [ pipe_id; producer ] -> (
            let producer = producer <> 0 in
            match Hashtbl.find_opt t.by_id pipe_id with
            | None -> k (P.Srs_reject P.E_invalid)
            | Some ring ->
              (* Derive a per-end capability from the ring capability,
                 then grant a child of it: closing this end revokes
                 exactly this derivation. *)
              service_syscall t
                (P.Sys_derive_mem
                   {
                     sel = ring.r_ring_sel;
                     offset = 0L;
                     size = Int64.of_int ring.r_size;
                     perms = Perms.rw;
                   })
                (fun r ->
                  match r with
                  | P.R_sel end_sel -> (
                    match Capspace.find t.vpe.Vpe.capspace end_sel with
                    | None -> k (P.Srs_reject P.E_no_such_cap)
                    | Some end_key ->
                      Hashtbl.replace ring.r_ends ident (end_sel, producer);
                      ring.r_attached <- ring.r_attached + 1;
                      if producer then ring.r_writers_attached <- ring.r_writers_attached + 1;
                      t.stats.grants <- t.stats.grants + 1;
                      let kind =
                        Cap.Mem_cap
                          {
                            host_pe = t.vpe.Vpe.pe;
                            addr = 0L;
                            size = Int64.of_int ring.r_size;
                            perms = Perms.rw;
                          }
                      in
                      k (P.Srs_grant { parent = end_key; kind }))
                  | P.R_ok | P.R_vpe _ | P.R_sess _ -> k (P.Srs_reject P.E_invalid)
                  | P.R_err e -> k (P.Srs_reject e)))
          | [] | [ _ ] | _ :: _ :: _ :: _ -> k (P.Srs_reject P.E_invalid))
  | P.Srq_delegate _ ->
    Server.submit t.server ~cost:t.cfg.cost_grant (fun () -> k (P.Srs_reject P.E_invalid))

(* ------------------------------------------------------------------ *)
(* Metadata IPC                                                         *)

type meta_req =
  | M_create of string
  | M_open of string  (** resolve name -> pipe id (capability follows via obtain) *)
  | M_close of { ident : int; pipe_id : int }

type meta_resp = M_ok | M_id of int | M_err of string

let handle_meta t req k =
  match req with
  | M_create name ->
    if Hashtbl.mem t.pipes name then k (M_err (name ^ ": exists"))
    else
      (* Allocate the ring buffer: a real kernel capability. *)
      service_syscall t
        (P.Sys_alloc_mem { size = Int64.of_int t.cfg.ring_size; perms = Perms.rw })
        (fun r ->
          match r with
          | P.R_sel ring_sel ->
            let id = t.next_pipe in
            t.next_pipe <- id + 1;
            let ring =
              {
                r_name = name;
                r_size = t.cfg.ring_size;
                r_used = 0;
                r_attached = 0;
                r_writers_attached = 0;
                r_closed = false;
                r_writers = Queue.create ();
                r_readers = Queue.create ();
                r_ring_sel = ring_sel;
                r_ends = Hashtbl.create 4;
              }
            in
            Hashtbl.add t.pipes name ring;
            Hashtbl.add t.by_id id ring;
            t.stats.pipes_created <- t.stats.pipes_created + 1;
            k M_ok
          | P.R_ok | P.R_vpe _ | P.R_sess _ -> k (M_err "unexpected alloc reply")
          | P.R_err e -> k (M_err (P.error_to_string e)))
  | M_open name -> (
    match Hashtbl.find_opt t.pipes name with
    | None -> k (M_err (name ^ ": no such pipe"))
    | Some ring ->
      let id =
        Hashtbl.fold (fun id r acc -> if r == ring then Some id else acc) t.by_id None
      in
      (match id with Some id -> k (M_id id) | None -> k (M_err "internal: unindexed pipe")))
  | M_close { ident; pipe_id } -> (
    match Hashtbl.find_opt t.by_id pipe_id with
    | None -> k (M_err "no such pipe")
    | Some ring -> (
      t.stats.closes <- t.stats.closes + 1;
      match Hashtbl.find_opt ring.r_ends ident with
      | None -> k (M_err "end not attached")
      | Some (end_sel, producer) ->
        Hashtbl.remove ring.r_ends ident;
        ring.r_attached <- ring.r_attached - 1;
        if producer then ring.r_writers_attached <- ring.r_writers_attached - 1;
        if ring.r_attached <= 0 then ring.r_closed <- true;
        (* Parked parties may now be at EOF or permanently blocked. *)
        wake t ring;
        (* Revoke this end's derived capability (and with it the
           client's copy). The reply does not wait for the revoke —
           it drains through the service's syscall queue. *)
        t.stats.revoke_calls <- t.stats.revoke_calls + 1;
        service_syscall t (P.Sys_revoke { sel = end_sel; own = true }) (fun _ -> ());
        k M_ok))

let meta_cost t = function
  | M_create _ | M_open _ | M_close _ -> t.cfg.cost_meta

let rpc t ~client_pe req k =
  let fabric = System.fabric t.sys in
  Fabric.send fabric ~src:client_pe ~dst:t.vpe.Vpe.pe ~bytes:64 (fun () ->
      Server.submit t.server ~cost:(meta_cost t req) (fun () ->
          handle_meta t req (fun resp ->
              Fabric.send fabric ~src:t.vpe.Vpe.pe ~dst:client_pe ~bytes:64 (fun () -> k resp))))

(* ------------------------------------------------------------------ *)
(* Boot                                                                 *)

let create ?(config = default_config) sys ~kernel:kid ~name () =
  let vpe = System.spawn_vpe sys ~kernel:kid in
  let kernel = System.kernel sys kid in
  let t =
    {
      sys;
      cfg = config;
      name;
      vpe;
      server = Server.create (System.engine sys) ~name:("pipe:" ^ name);
      stats = { pipes_created = 0; grants = 0; bytes_moved = 0; closes = 0; revoke_calls = 0 };
      pipes = Hashtbl.create 8;
      by_id = Hashtbl.create 8;
      sessions = Hashtbl.create 8;
      next_ident = 0;
      next_pipe = 0;
      sys_queue = Queue.create ();
      sys_busy = false;
    }
  in
  Kernel.register_service_handler kernel ~name (fun req k -> handle_upcall t req k);
  (match System.syscall_sync sys vpe (P.Sys_create_srv { name }) with
  | P.R_sel _ -> ()
  | r -> invalid_arg (Format.asprintf "Pipe.create: create_srv failed: %a" P.pp_reply r));
  ignore (System.run sys);
  t

(* ------------------------------------------------------------------ *)
(* Endpoints                                                            *)

module Endpoint = struct
  type pipe = t

  type t = {
    e_sys : System.t;
    e_pipe : pipe;
    e_vpe : Vpe.t;
    e_sess : P.selector;
    e_ident : int;
    e_attached : (int, ring) Hashtbl.t;  (** pipe id -> ring *)
  }

  let connect sys (pipe : pipe) ~vpe k =
    System.syscall sys vpe (P.Sys_open_session { service = pipe.name }) (fun r ->
        match r with
        | P.R_sess { sel; ident } ->
          k (Ok { e_sys = sys; e_pipe = pipe; e_vpe = vpe; e_sess = sel; e_ident = ident;
                  e_attached = Hashtbl.create 4 })
        | P.R_err e -> k (Error (P.error_to_string e))
        | P.R_ok | P.R_sel _ | P.R_vpe _ -> k (Error "unexpected open_session reply"))

  let create_pipe t name k =
    rpc t.e_pipe ~client_pe:t.e_vpe.Vpe.pe (M_create name) (fun r ->
        match r with
        | M_ok -> k (Ok ())
        | M_err e -> k (Error e)
        | M_id _ -> k (Error "unexpected reply"))

  let open_pipe t name ~role k =
    rpc t.e_pipe ~client_pe:t.e_vpe.Vpe.pe (M_open name) (fun r ->
        match r with
        | M_err e -> k (Error e)
        | M_ok -> k (Error "unexpected reply")
        | M_id pipe_id ->
          (* Obtain the ring capability through the kernel. *)
          System.syscall t.e_sys t.e_vpe
            (P.Sys_obtain
               { sess = t.e_sess; args = [ pipe_id; (match role with `Producer -> 1 | `Consumer -> 0) ] })
            (fun r ->
              match r with
              | P.R_sel _ -> (
                match Hashtbl.find_opt t.e_pipe.by_id pipe_id with
                | Some ring ->
                  Hashtbl.replace t.e_attached pipe_id ring;
                  k (Ok pipe_id)
                | None -> k (Error "pipe vanished"))
              | P.R_err e -> k (Error (P.error_to_string e))
              | P.R_ok | P.R_vpe _ | P.R_sess _ -> k (Error "unexpected obtain reply")))

  (* Data movement happens end-to-end over the NoC through the shared
     ring: charge transfer time on this VPE's PE, no kernel, no
     service. *)
  let charge t bytes k =
    let bw = t.e_pipe.cfg.mem_bytes_per_cycle in
    Engine.after (System.engine t.e_sys) (Int64.of_int ((bytes + bw - 1) / bw)) k

  let send t ~pipe ~bytes k =
    match Hashtbl.find_opt t.e_attached pipe with
    | None -> k (Error "pipe not open")
    | Some ring ->
      if bytes < 0 || bytes > ring.r_size then k (Error "bad length")
      else if ring.r_closed then k (Error "pipe closed")
      else
        charge t bytes (fun () ->
            if ring.r_used + bytes <= ring.r_size then begin
              ring.r_used <- ring.r_used + bytes;
              t.e_pipe.stats.bytes_moved <- t.e_pipe.stats.bytes_moved + bytes;
              wake t.e_pipe ring;
              k (Ok ())
            end
            else Queue.push (bytes, k) ring.r_writers)

  let recv t ~pipe ~bytes k =
    match Hashtbl.find_opt t.e_attached pipe with
    | None -> k (Error "pipe not open")
    | Some ring ->
      if bytes <= 0 then k (Error "bad length")
      else
        charge t bytes (fun () ->
            if ring.r_used > 0 then begin
              let n = min bytes ring.r_used in
              ring.r_used <- ring.r_used - n;
              wake t.e_pipe ring;
              k (Ok n)
            end
            else if at_eof ring then k (Ok 0)
            else Queue.push (bytes, k) ring.r_readers)

  let close t ~pipe k =
    match Hashtbl.find_opt t.e_attached pipe with
    | None -> k (Error "pipe not open")
    | Some _ring ->
      Hashtbl.remove t.e_attached pipe;
      rpc t.e_pipe ~client_pe:t.e_vpe.Vpe.pe (M_close { ident = t.e_ident; pipe_id = pipe })
        (fun r ->
          match r with
          | M_ok -> k (Ok ())
          | M_err e -> k (Error e)
          | M_id _ -> k (Error "unexpected reply"))
end
