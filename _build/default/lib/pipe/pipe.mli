(** Zero-copy pipe service.

    M3 implements pipes the same way m3fs implements files (the paper
    groups them under "drivers and OS services ... as applications",
    §2.2): the pipe service owns a ring buffer per pipe; producer and
    consumer obtain memory capabilities for it through the kernel and
    move data over the NoC without the service or the kernel touching
    the bytes. Closing an end revokes its capability.

    This is a second, independent service type exercising the
    distributed capability protocols (session establishment, obtains
    and revokes possibly spanning kernels).

    All data movement is modelled: writes reserve space in the ring,
    reads consume it; the byte transfer time is charged on the acting
    VPE's PE like any other memory traffic. *)

type config = {
  ring_size : int;          (** ring-buffer capacity in bytes *)
  cost_meta : int64;        (** service-side cost of create/open/close *)
  cost_grant : int64;       (** service-side cost of an obtain upcall *)
  mem_bytes_per_cycle : int;
}

val default_config : config

type stats = {
  mutable pipes_created : int;
  mutable grants : int;
  mutable bytes_moved : int;
  mutable closes : int;
  mutable revoke_calls : int;
}

type t

(** [create sys ~kernel ~name ()] spawns the pipe service VPE in
    [kernel]'s group and registers + announces it. Boot-time call. *)
val create : ?config:config -> Semper_kernel.System.t -> kernel:int -> name:string -> unit -> t

val name : t -> string
val server : t -> Semper_sim.Server.t
val stats : t -> stats

(** Client-side endpoint of a pipe. *)
module Endpoint : sig
  type pipe = t

  type t

  (** [connect sys pipe ~vpe k]: open a session with the service. *)
  val connect :
    Semper_kernel.System.t -> pipe -> vpe:Semper_kernel.Vpe.t -> ((t, string) result -> unit) -> unit

  (** [create_pipe t name k]: register a named pipe at the service. *)
  val create_pipe : t -> string -> ((unit, string) result -> unit) -> unit

  (** [open_pipe t name ~role k]: attach to a named pipe as producer or
      consumer; obtains the ring-buffer capability through the kernel
      (a capability exchange, spanning kernels when service and client
      are in different groups). *)
  val open_pipe :
    t -> string -> role:[ `Producer | `Consumer ] -> ((int, string) result -> unit) -> unit

  (** [send t ~pipe ~bytes k]: write into the ring. Blocks (in simulated
      time) while the ring is full, waking as the consumer drains it. *)
  val send : t -> pipe:int -> bytes:int -> ((unit, string) result -> unit) -> unit

  (** [recv t ~pipe ~bytes k]: read up to [bytes]; yields the amount
      actually consumed. Blocks while the ring is empty, waking as the
      producer fills it (0 = EOF, once every producer end has closed
      and the ring is drained). *)
  val recv : t -> pipe:int -> bytes:int -> ((int, string) result -> unit) -> unit

  (** [close t ~pipe k]: detach; the service revokes this end's
      ring-buffer capability. Closing the last producer end puts the
      pipe at EOF for its consumers. *)
  val close : t -> pipe:int -> ((unit, string) result -> unit) -> unit
end
