lib/pipe/pipe.mli: Semper_kernel Semper_sim
