lib/pipe/pipe.ml: Format Hashtbl Int64 Queue Semper_caps Semper_kernel Semper_noc Semper_sim
