(** Copy-on-write filesystem service.

    The paper motivates its fast distributed revoke with exactly this
    service (§3): "A copy-on-write filesystem can be implemented
    efficiently on top of a capability system with a sufficiently fast
    revoke operation. When an application performs a write it receives
    a mapping to its own copy of data and access to the original data
    has to be revoked."

    Snapshots share extents between files; readers hold read-only
    capabilities on shared extents. The first write to a shared extent
    triggers the COW break: the service allocates a private copy,
    *revokes every outstanding capability on the original extent* (the
    performance-critical step), rebinds the writer's file to the copy,
    and grants a writable capability on it. *)

type config = {
  extent_size : int64;
  cost_meta : int64;   (** open/close/stat/snapshot service processing *)
  cost_grant : int64;  (** obtain upcall processing *)
  mem_bytes_per_cycle : int;
}

val default_config : config

type stats = {
  mutable meta_ops : int;
  mutable grants : int;
  mutable snapshots : int;
  mutable cow_breaks : int;   (** shared extents privatised by a write *)
  mutable revoke_calls : int; (** revocations issued (COW breaks + closes) *)
}

type t

(** Spawn the service VPE in [kernel]'s group with the given initial
    files; boot-time call (runs the engine to finish registration). *)
val create :
  ?config:config ->
  Semper_kernel.System.t ->
  kernel:int ->
  name:string ->
  files:(string * int64) list ->
  unit ->
  t

val name : t -> string
val server : t -> Semper_sim.Server.t
val stats : t -> stats

(** How many extents of [path] are currently shared with a snapshot. *)
val shared_extents : t -> string -> int

(** Client-side library. Unlike the m3fs client, extent capabilities
    are re-obtained per read/write call: a concurrent COW break revokes
    them at any time, so nothing may be cached across calls. *)
module Client : sig
  type cowfs = t

  type t

  val connect :
    Semper_kernel.System.t -> cowfs -> vpe:Semper_kernel.Vpe.t -> ((t, string) result -> unit) -> unit

  (** Kernel capability operations this client triggered. *)
  val cap_ops : t -> int

  val open_ : t -> string -> write:bool -> ((int, string) result -> unit) -> unit

  (** [snapshot t ~src ~dst k]: create [dst] sharing all of [src]'s
      extents (constant time, no data copied). *)
  val snapshot : t -> src:string -> dst:string -> ((unit, string) result -> unit) -> unit

  val read : t -> fd:int -> pos:int64 -> bytes:int -> ((int, string) result -> unit) -> unit

  (** Writing into a shared extent triggers the COW break. *)
  val write : t -> fd:int -> pos:int64 -> bytes:int -> ((unit, string) result -> unit) -> unit

  val close : t -> fd:int -> ((unit, string) result -> unit) -> unit
end
