module P = Semper_kernel.Protocol
module System = Semper_kernel.System
module Kernel = Semper_kernel.Kernel
module Vpe = Semper_kernel.Vpe
module Cap = Semper_caps.Cap
module Perms = Semper_caps.Perms
module Capspace = Semper_caps.Capspace
module Engine = Semper_sim.Engine
module Server = Semper_sim.Server
module Fabric = Semper_noc.Fabric
module Fs_image = Semper_m3fs.Fs_image
module Key = Semper_ddl.Key

type config = {
  extent_size : int64;
  cost_meta : int64;
  cost_grant : int64;
  mem_bytes_per_cycle : int;
}

let default_config =
  { extent_size = Int64.of_int (256 * 1024); cost_meta = 2200L; cost_grant = 1600L;
    mem_bytes_per_cycle = 8 }

type stats = {
  mutable meta_ops : int;
  mutable grants : int;
  mutable snapshots : int;
  mutable cow_breaks : int;
  mutable revoke_calls : int;
}

type open_file = { of_path : string; of_file : Fs_image.file; of_write : bool }

type session = { s_ident : int; s_opens : (int, open_file) Hashtbl.t }

type t = {
  sys : System.t;
  cfg : config;
  name : string;
  vpe : Vpe.t;
  server : Server.t;
  image : Fs_image.t;
  (* Extents shared by more than one file, keyed by their capability. *)
  shared : unit Key.Table.t;
  sessions : (int, session) Hashtbl.t;
  stats : stats;
  mutable next_ident : int;
  mutable next_fd : int;
  mutable next_addr : int64;
  sys_queue : (P.syscall * (P.reply -> unit)) Queue.t;
  mutable sys_busy : bool;
}

let name t = t.name
let server t = t.server
let stats t = t.stats

let shared_extents t path =
  match Fs_image.find_file t.image path with
  | Error _ -> 0
  | Ok f ->
    List.length
      (List.filter
         (fun (e : Fs_image.extent) ->
           match e.Fs_image.e_key with
           | Some key -> Key.Table.mem t.shared key
           | None -> false)
         f.Fs_image.extents)

(* Serialised service syscalls. *)
let rec pump t =
  if (not t.sys_busy) && not (Queue.is_empty t.sys_queue) then begin
    let call, k = Queue.pop t.sys_queue in
    t.sys_busy <- true;
    System.syscall t.sys t.vpe call (fun r ->
        t.sys_busy <- false;
        k r;
        pump t)
  end

let service_syscall t call k =
  Queue.push (call, k) t.sys_queue;
  pump t

let attach_extent_boot t kernel (e : Fs_image.extent) =
  let kind =
    Cap.Mem_cap { host_pe = t.vpe.Vpe.pe; addr = t.next_addr; size = e.Fs_image.e_len; perms = Perms.rw }
  in
  t.next_addr <- Int64.add t.next_addr e.Fs_image.e_len;
  let sel, key = Kernel.install_new_cap kernel ~owner:t.vpe ~kind () in
  e.Fs_image.e_sel <- sel;
  e.Fs_image.e_key <- Some key

(* Allocate a fresh private extent through the kernel. *)
let alloc_extent t ~len k =
  service_syscall t (P.Sys_alloc_mem { size = len; perms = Perms.rw }) (fun r ->
      match r with
      | P.R_sel sel -> (
        match Capspace.find t.vpe.Vpe.capspace sel with
        | Some key -> k (Ok (sel, key))
        | None -> k (Error "allocated capability vanished"))
      | P.R_ok | P.R_vpe _ | P.R_sess _ -> k (Error "unexpected alloc reply")
      | P.R_err e -> k (Error (P.error_to_string e)))

(* The COW break: privatise a shared extent for [file].
   1. allocate a private copy;
   2. revoke every capability handed out on the original
      ("access to the original data has to be revoked");
   3. rebind the file's extent to the copy. *)
let cow_break t (file : Fs_image.file) (e : Fs_image.extent) k =
  alloc_extent t ~len:e.Fs_image.e_len (fun r ->
      match r with
      | Error e -> k (Error e)
      | Ok (new_sel, new_key) ->
        let old_sel = e.Fs_image.e_sel in
        t.stats.revoke_calls <- t.stats.revoke_calls + 1;
        t.stats.cow_breaks <- t.stats.cow_breaks + 1;
        service_syscall t (P.Sys_revoke { sel = old_sel; own = false }) (fun r ->
            match r with
            | P.R_ok | P.R_err P.E_no_such_cap ->
              let private_extent =
                {
                  Fs_image.e_off = e.Fs_image.e_off;
                  e_len = e.Fs_image.e_len;
                  e_sel = new_sel;
                  e_key = Some new_key;
                }
              in
              file.Fs_image.extents <-
                List.map
                  (fun x -> if x == e then private_extent else x)
                  file.Fs_image.extents;
              (* The copy is private; the original may still be shared
                 among the remaining snapshot files (or not — we keep
                 the conservative marking, it only costs a future
                 no-op break). *)
              k (Ok private_extent)
            | P.R_sel _ | P.R_vpe _ | P.R_sess _ -> k (Error "unexpected revoke reply")
            | P.R_err err -> k (Error (P.error_to_string err))))

(* ------------------------------------------------------------------ *)
(* Kernel upcalls                                                       *)

let grant t (session : session) ~fd ~pos ~write k =
  match Hashtbl.find_opt session.s_opens fd with
  | None -> k (P.Srs_reject P.E_no_such_session)
  | Some opened ->
    if write && not opened.of_write then k (P.Srs_reject P.E_denied)
    else (
      match Fs_image.extent_for opened.of_file ~pos:(Int64.of_int pos) with
      | None -> k (P.Srs_reject P.E_invalid)
      | Some e ->
        let deliver (e : Fs_image.extent) =
          match e.Fs_image.e_key with
          | None -> k (P.Srs_reject P.E_no_such_cap)
          | Some key ->
            t.stats.grants <- t.stats.grants + 1;
            let perms = if write then Perms.rw else Perms.r in
            let kind =
              Cap.Mem_cap { host_pe = t.vpe.Vpe.pe; addr = 0L; size = e.Fs_image.e_len; perms }
            in
            k (P.Srs_grant { parent = key; kind })
        in
        let is_shared =
          match e.Fs_image.e_key with
          | Some key -> Key.Table.mem t.shared key
          | None -> false
        in
        if write && is_shared then
          cow_break t opened.of_file e (fun r ->
              match r with
              | Ok private_extent -> deliver private_extent
              | Error _ -> k (P.Srs_reject P.E_invalid))
        else deliver e)

let handle_upcall t (req : P.service_request) k =
  match req with
  | P.Srq_open_session _ ->
    Server.submit t.server ~cost:t.cfg.cost_meta (fun () ->
        let ident = t.next_ident in
        t.next_ident <- ident + 1;
        Hashtbl.add t.sessions ident { s_ident = ident; s_opens = Hashtbl.create 8 };
        k (P.Srs_session { ident }))
  | P.Srq_obtain { ident; args } ->
    Server.submit t.server ~cost:t.cfg.cost_grant (fun () ->
        match Hashtbl.find_opt t.sessions ident with
        | None -> k (P.Srs_reject P.E_no_such_session)
        | Some session -> (
          match args with
          | [ fd; pos; write ] -> grant t session ~fd ~pos ~write:(write <> 0) k
          | [] | [ _ ] | [ _; _ ] | _ :: _ :: _ :: _ -> k (P.Srs_reject P.E_invalid)))
  | P.Srq_delegate _ ->
    Server.submit t.server ~cost:t.cfg.cost_grant (fun () -> k (P.Srs_reject P.E_invalid))

(* ------------------------------------------------------------------ *)
(* Metadata IPC                                                         *)

type meta_req =
  | M_open of { ident : int; path : string; write : bool }
  | M_snapshot of { src : string; dst : string }
  | M_close of { ident : int; fd : int }

type meta_resp = M_ok | M_fd of { fd : int; size : int64 } | M_err of string

let handle_meta t req k =
  t.stats.meta_ops <- t.stats.meta_ops + 1;
  match req with
  | M_open { ident; path; write } -> (
    match Hashtbl.find_opt t.sessions ident with
    | None -> k (M_err "no such session")
    | Some session -> (
      match Fs_image.find_file t.image path with
      | Error e -> k (M_err e)
      | Ok file ->
        let fd = t.next_fd in
        t.next_fd <- fd + 1;
        Hashtbl.add session.s_opens fd { of_path = path; of_file = file; of_write = write };
        k (M_fd { fd; size = file.Fs_image.size })))
  | M_snapshot { src; dst } -> (
    match Fs_image.find_file t.image src with
    | Error e -> k (M_err e)
    | Ok src_file -> (
      match Fs_image.add_file t.image dst ~size:0L with
      | Error e -> k (M_err e)
      | Ok dst_file ->
        (* Constant-time snapshot: alias the extent records and mark
           every one of them shared. *)
        dst_file.Fs_image.extents <- src_file.Fs_image.extents;
        dst_file.Fs_image.size <- src_file.Fs_image.size;
        List.iter
          (fun (e : Fs_image.extent) ->
            match e.Fs_image.e_key with
            | Some key -> Key.Table.replace t.shared key ()
            | None -> ())
          src_file.Fs_image.extents;
        t.stats.snapshots <- t.stats.snapshots + 1;
        k M_ok))
  | M_close { ident; fd } -> (
    match Hashtbl.find_opt t.sessions ident with
    | None -> k (M_err "no such session")
    | Some session -> (
      match Hashtbl.find_opt session.s_opens fd with
      | None -> k (M_err "bad fd")
      | Some opened ->
        Hashtbl.remove session.s_opens fd;
        (* Revoke the capabilities handed out for this file's extents
           (children-only: the service keeps its own). Clients of other
           opens re-obtain on their next access. *)
        List.iter
          (fun (e : Fs_image.extent) ->
            if e.Fs_image.e_sel >= 0 then begin
              t.stats.revoke_calls <- t.stats.revoke_calls + 1;
              service_syscall t (P.Sys_revoke { sel = e.Fs_image.e_sel; own = false }) (fun _ -> ())
            end)
          opened.of_file.Fs_image.extents;
        k M_ok))

let rpc t ~client_pe req k =
  let fabric = System.fabric t.sys in
  Fabric.send fabric ~src:client_pe ~dst:t.vpe.Vpe.pe ~bytes:64 (fun () ->
      Server.submit t.server ~cost:t.cfg.cost_meta (fun () ->
          handle_meta t req (fun resp ->
              Fabric.send fabric ~src:t.vpe.Vpe.pe ~dst:client_pe ~bytes:64 (fun () -> k resp))))

(* ------------------------------------------------------------------ *)
(* Boot                                                                 *)

let ensure_dirs image path =
  let components = Fs_image.split_path path in
  let rec go prefix = function
    | [] | [ _ ] -> ()
    | dir :: rest ->
      let p = prefix ^ "/" ^ dir in
      (match Fs_image.lookup image p with
      | Some _ -> ()
      | None -> ignore (Fs_image.mkdir image p));
      go p rest
  in
  go "" components

let create ?(config = default_config) sys ~kernel:kid ~name ~files () =
  let vpe = System.spawn_vpe sys ~kernel:kid in
  let kernel = System.kernel sys kid in
  let image = Fs_image.create ~extent_size:config.extent_size in
  let t =
    {
      sys;
      cfg = config;
      name;
      vpe;
      server = Server.create (System.engine sys) ~name:("cowfs:" ^ name);
      image;
      shared = Key.Table.create 32;
      sessions = Hashtbl.create 16;
      stats = { meta_ops = 0; grants = 0; snapshots = 0; cow_breaks = 0; revoke_calls = 0 };
      next_ident = 0;
      next_fd = 3;
      next_addr = 0x4000_0000L;
      sys_queue = Queue.create ();
      sys_busy = false;
    }
  in
  Kernel.register_service_handler kernel ~name (fun req k -> handle_upcall t req k);
  (match System.syscall_sync sys vpe (P.Sys_create_srv { name }) with
  | P.R_sel _ -> ()
  | r -> invalid_arg (Format.asprintf "Cowfs.create: create_srv failed: %a" P.pp_reply r));
  List.iter
    (fun (path, size) ->
      ensure_dirs image path;
      match Fs_image.add_file image path ~size with
      | Ok file -> List.iter (attach_extent_boot t kernel) file.Fs_image.extents
      | Error e -> invalid_arg ("Cowfs.create: " ^ e))
    files;
  ignore (System.run sys);
  t

(* ------------------------------------------------------------------ *)
(* Client                                                               *)

module Client = struct
  type cowfs = t

  type t = {
    c_sys : System.t;
    c_fs : cowfs;
    c_vpe : Vpe.t;
    c_sess : P.selector;
    c_ident : int;
    c_sizes : (int, int64) Hashtbl.t;
    mutable c_cap_ops : int;
  }

  let cap_ops t = t.c_cap_ops

  let connect sys fs ~vpe k =
    System.syscall sys vpe (P.Sys_open_session { service = fs.name }) (fun r ->
        match r with
        | P.R_sess { sel; ident } ->
          k (Ok { c_sys = sys; c_fs = fs; c_vpe = vpe; c_sess = sel; c_ident = ident;
                  c_sizes = Hashtbl.create 8; c_cap_ops = 1 })
        | P.R_err e -> k (Error (P.error_to_string e))
        | P.R_ok | P.R_sel _ | P.R_vpe _ -> k (Error "unexpected open_session reply"))

  let open_ t path ~write k =
    rpc t.c_fs ~client_pe:t.c_vpe.Vpe.pe (M_open { ident = t.c_ident; path; write }) (fun r ->
        match r with
        | M_fd { fd; size } ->
          Hashtbl.replace t.c_sizes fd size;
          k (Ok fd)
        | M_err e -> k (Error e)
        | M_ok -> k (Error "unexpected reply"))

  let snapshot t ~src ~dst k =
    rpc t.c_fs ~client_pe:t.c_vpe.Vpe.pe (M_snapshot { src; dst }) (fun r ->
        match r with
        | M_ok -> k (Ok ())
        | M_err e -> k (Error e)
        | M_fd _ -> k (Error "unexpected reply"))

  let charge t bytes k =
    let bw = t.c_fs.cfg.mem_bytes_per_cycle in
    Engine.after (System.engine t.c_sys) (Int64.of_int ((bytes + bw - 1) / bw)) k

  (* Every access re-obtains its extent capability: a COW break may
     have revoked the previous one at any time. *)
  let access t ~fd ~pos ~bytes ~write k =
    t.c_cap_ops <- t.c_cap_ops + 1;
    System.syscall t.c_sys t.c_vpe
      (P.Sys_obtain
         { sess = t.c_sess; args = [ fd; Int64.to_int pos; (if write then 1 else 0) ] })
      (fun r ->
        match r with
        | P.R_sel _ -> charge t bytes (fun () -> k (Ok ()))
        | P.R_err e -> k (Error (P.error_to_string e))
        | P.R_ok | P.R_vpe _ | P.R_sess _ -> k (Error "unexpected obtain reply"))

  let read t ~fd ~pos ~bytes k =
    match Hashtbl.find_opt t.c_sizes fd with
    | None -> k (Error "bad fd")
    | Some size ->
      if Int64.compare pos size >= 0 then k (Ok 0)
      else begin
        let n = Int64.to_int (min (Int64.of_int bytes) (Int64.sub size pos)) in
        access t ~fd ~pos ~bytes:n ~write:false (fun r ->
            match r with
            | Ok () -> k (Ok n)
            | Error e -> k (Error e))
      end

  let write t ~fd ~pos ~bytes k =
    match Hashtbl.find_opt t.c_sizes fd with
    | None -> k (Error "bad fd")
    | Some size ->
      if Int64.compare (Int64.add pos (Int64.of_int bytes)) size > 0 then
        k (Error "cowfs: writes must stay within the file")
      else access t ~fd ~pos ~bytes ~write:true k

  let close t ~fd k =
    match Hashtbl.find_opt t.c_sizes fd with
    | None -> k (Error "bad fd")
    | Some _ ->
      Hashtbl.remove t.c_sizes fd;
      rpc t.c_fs ~client_pe:t.c_vpe.Vpe.pe (M_close { ident = t.c_ident; fd }) (fun r ->
          match r with
          | M_ok -> k (Ok ())
          | M_err e -> k (Error e)
          | M_fd _ -> k (Error "unexpected reply"))
end
