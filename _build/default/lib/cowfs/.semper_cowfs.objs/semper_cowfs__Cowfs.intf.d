lib/cowfs/cowfs.mli: Semper_kernel Semper_sim
