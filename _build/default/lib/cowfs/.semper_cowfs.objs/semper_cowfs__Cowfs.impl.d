lib/cowfs/cowfs.ml: Format Hashtbl Int64 List Queue Semper_caps Semper_ddl Semper_kernel Semper_m3fs Semper_noc Semper_sim
