lib/dtu/message.mli: Format
