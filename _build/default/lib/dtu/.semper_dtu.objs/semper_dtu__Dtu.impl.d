lib/dtu/dtu.ml: Array Format Hashtbl Int64 Message Semper_noc Semper_sim
