lib/dtu/message.ml: Format
