lib/dtu/dtu.mli: Format Message Semper_noc Semper_sim
