type payload = ..
type payload += Raw of string

type t = {
  src_pe : int;
  src_ep : int;
  dst_pe : int;
  dst_ep : int;
  bytes : int;
  payload : payload;
}

let pp ppf m =
  Format.fprintf ppf "msg[%d.%d -> %d.%d, %dB]" m.src_pe m.src_ep m.dst_pe m.dst_ep m.bytes
