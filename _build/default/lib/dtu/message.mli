(** Messages carried between DTUs.

    The payload is an extensible variant: each layer of the system
    (kernel protocol, service IPC, application traffic) adds its own
    constructors without the DTU depending on any of them. *)

type payload = ..

(** Payload used by tests and as a neutral default. *)
type payload += Raw of string

type t = {
  src_pe : int;
  src_ep : int;
  dst_pe : int;
  dst_ep : int;
  bytes : int;  (** modelled wire size, for latency accounting *)
  payload : payload;
}

val pp : Format.formatter -> t -> unit
