lib/m3fs/fs_image.mli: Hashtbl Semper_ddl
