lib/m3fs/m3fs.ml: Format Fs_image Hashtbl Int64 List Logs Queue Semper_caps Semper_kernel Semper_noc Semper_sim
