lib/m3fs/fs_image.ml: Hashtbl Int64 List Result Semper_ddl String
