lib/m3fs/client.ml: Hashtbl Int64 M3fs Option Semper_kernel Semper_sim
