lib/m3fs/client.mli: M3fs Semper_kernel
