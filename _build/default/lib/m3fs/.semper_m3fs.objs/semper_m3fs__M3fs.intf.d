lib/m3fs/m3fs.mli: Fs_image Semper_kernel Semper_sim
