module P = Semper_kernel.Protocol
module System = Semper_kernel.System
module Vpe = Semper_kernel.Vpe
module Engine = Semper_sim.Engine

type cfd = {
  fd : int;
  write : bool;
  mutable size : int64;
  mutable pos : int64;
  (* Exclusive upper bound of the range currently covered by an
     obtained capability; 0 = nothing obtained yet. *)
  mutable have_until : int64;
}

type t = {
  sys : System.t;
  fs : M3fs.t;
  vpe : Vpe.t;
  sess_sel : P.selector;
  ident : int;
  fds : (int, cfd) Hashtbl.t;
  mutable cap_ops : int;
}

let vpe t = t.vpe
let ident t = t.ident
let cap_ops t = t.cap_ops

let connect sys fs ~vpe k =
  System.syscall sys vpe (P.Sys_open_session { service = M3fs.name fs }) (fun r ->
      match r with
      | P.R_sess { sel; ident } ->
        k (Ok { sys; fs; vpe; sess_sel = sel; ident; fds = Hashtbl.create 8; cap_ops = 1 })
      | P.R_err e -> k (Error (P.error_to_string e))
      | P.R_ok | P.R_sel _ | P.R_vpe _ -> k (Error "unexpected open_session reply"))

let rpc t req k = M3fs.rpc t.fs ~client_pe:t.vpe.Vpe.pe req k

let unit_of_resp = function
  | M3fs.M_ok | M3fs.M_stat_r _ -> Ok ()
  | M3fs.M_err e -> Error e
  | M3fs.M_fd _ | M3fs.M_entries _ -> Error "unexpected reply"

let stat t path k = rpc t (M3fs.M_stat path) (fun r -> k (unit_of_resp r))
let mkdir t path k = rpc t (M3fs.M_mkdir path) (fun r -> k (unit_of_resp r))
let unlink t path k = rpc t (M3fs.M_unlink path) (fun r -> k (unit_of_resp r))

let list t path k =
  rpc t (M3fs.M_list path) (fun r ->
      match r with
      | M3fs.M_entries es -> k (Ok es)
      | M3fs.M_err e -> k (Error e)
      | M3fs.M_ok | M3fs.M_fd _ | M3fs.M_stat_r _ -> k (Error "unexpected reply"))

let open_ t path ~write ~create k =
  rpc t (M3fs.M_open { ident = t.ident; path; write; create }) (fun r ->
      match r with
      | M3fs.M_fd { fd; size } ->
        Hashtbl.replace t.fds fd { fd; write; size; pos = 0L; have_until = 0L };
        k (Ok fd)
      | M3fs.M_err e -> k (Error e)
      | M3fs.M_ok | M3fs.M_entries _ | M3fs.M_stat_r _ -> k (Error "unexpected reply"))

let file_size t ~fd =
  Option.map (fun cfd -> cfd.size) (Hashtbl.find_opt t.fds fd)

let seek t ~fd ~pos =
  match Hashtbl.find_opt t.fds fd with
  | None -> Error "bad fd"
  | Some cfd ->
    if Int64.compare pos 0L < 0 then Error "negative position"
    else begin
      cfd.pos <- pos;
      Ok ()
    end

(* End of the extent-capability range covering [pos]. *)
let range_end t pos =
  let es = (M3fs.config t.fs).M3fs.extent_size in
  Int64.mul (Int64.add (Int64.div pos es) 1L) es

(* Obtain the extent capability covering [pos] from the service via the
   kernel; this is the capability-system hot path. *)
let obtain_range t (cfd : cfd) ~for_write k =
  t.cap_ops <- t.cap_ops + 1;
  System.syscall t.sys t.vpe
    (P.Sys_obtain
       { sess = t.sess_sel; args = [ cfd.fd; Int64.to_int cfd.pos; (if for_write then 1 else 0) ] })
    (fun r ->
      match r with
      | P.R_sel _ ->
        cfd.have_until <- range_end t cfd.pos;
        k (Ok ())
      | P.R_err e -> k (Error (P.error_to_string e))
      | P.R_ok | P.R_vpe _ | P.R_sess _ -> k (Error "unexpected obtain reply"))

(* Charge uncontended memory-access time on the client PE. *)
let charge_access t bytes k =
  let cfg = M3fs.config t.fs in
  let bw = cfg.M3fs.mem_bytes_per_cycle in
  let raw = (bytes + bw - 1) / bw in
  let cycles = Int64.of_float (float_of_int raw *. cfg.M3fs.mem_slowdown) in
  Engine.after (System.engine t.sys) cycles k

let read t ~fd ~bytes k =
  match Hashtbl.find_opt t.fds fd with
  | None -> k (Error "bad fd")
  | Some cfd ->
    if bytes < 0 then k (Error "negative length")
    else begin
      let target = min (Int64.add cfd.pos (Int64.of_int bytes)) cfd.size in
      let rec step total =
        if Int64.compare cfd.pos target >= 0 then k (Ok total)
        else if Int64.compare cfd.pos cfd.have_until >= 0 then
          obtain_range t cfd ~for_write:false (fun r ->
              match r with
              | Ok () -> step total
              | Error e -> k (Error e))
        else begin
          let chunk = Int64.to_int (Int64.sub (min target cfd.have_until) cfd.pos) in
          charge_access t chunk (fun () ->
              cfd.pos <- Int64.add cfd.pos (Int64.of_int chunk);
              step (total + chunk))
        end
      in
      step 0
    end

let write t ~fd ~bytes k =
  match Hashtbl.find_opt t.fds fd with
  | None -> k (Error "bad fd")
  | Some cfd ->
    if bytes < 0 then k (Error "negative length")
    else if not cfd.write then k (Error "read-only descriptor")
    else begin
      let target = Int64.add cfd.pos (Int64.of_int bytes) in
      let rec step () =
        if Int64.compare cfd.pos target >= 0 then begin
          if Int64.compare cfd.size cfd.pos < 0 then cfd.size <- cfd.pos;
          k (Ok ())
        end
        else if Int64.compare cfd.pos cfd.have_until >= 0 then
          obtain_range t cfd ~for_write:true (fun r ->
              match r with
              | Ok () -> step ()
              | Error e -> k (Error e))
        else begin
          let chunk = Int64.to_int (Int64.sub (min target cfd.have_until) cfd.pos) in
          charge_access t chunk (fun () ->
              cfd.pos <- Int64.add cfd.pos (Int64.of_int chunk);
              if Int64.compare cfd.size cfd.pos < 0 then cfd.size <- cfd.pos;
              step ())
        end
      in
      step ()
    end

let close t ~fd k =
  match Hashtbl.find_opt t.fds fd with
  | None -> k (Error "bad fd")
  | Some cfd ->
    Hashtbl.remove t.fds fd;
    rpc t (M3fs.M_close { ident = t.ident; fd; size = cfd.size }) (fun r -> k (unit_of_resp r))
