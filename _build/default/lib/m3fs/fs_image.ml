type extent = {
  e_off : int64;
  e_len : int64;
  mutable e_sel : int;
  mutable e_key : Semper_ddl.Key.t option;
}

type file = { mutable size : int64; mutable extents : extent list }

type node = File of file | Dir of (string, node) Hashtbl.t

type t = { root : (string, node) Hashtbl.t; extent_size : int64 }

let create ~extent_size =
  if Int64.compare extent_size 0L <= 0 then invalid_arg "Fs_image.create: extent size";
  { root = Hashtbl.create 16; extent_size }

let extent_size t = t.extent_size

let split_path path =
  String.split_on_char '/' path |> List.filter (fun c -> c <> "")

(* Walk to the parent directory of [path]; returns (dir, basename). *)
let parent_of t path =
  match List.rev (split_path path) with
  | [] -> Error "empty path"
  | base :: rev_dirs ->
    let rec walk dir = function
      | [] -> Ok dir
      | comp :: rest -> (
        match Hashtbl.find_opt dir comp with
        | Some (Dir d) -> walk d rest
        | Some (File _) -> Error (comp ^ ": not a directory")
        | None -> Error (comp ^ ": no such directory"))
    in
    Result.map (fun dir -> (dir, base)) (walk t.root (List.rev rev_dirs))

let lookup t path =
  match split_path path with
  | [] -> Some (Dir t.root)
  | _ -> (
    match parent_of t path with
    | Error _ -> None
    | Ok (dir, base) -> Hashtbl.find_opt dir base)

let mkdir t path =
  (* mkdir -p semantics: create missing intermediate directories. *)
  match List.rev (split_path path) with
  | [] -> Error "empty path"
  | base :: rev_dirs ->
    let rec walk dir = function
      | [] -> Ok dir
      | comp :: rest -> (
        match Hashtbl.find_opt dir comp with
        | Some (Dir d) -> walk d rest
        | Some (File _) -> Error (comp ^ ": not a directory")
        | None ->
          let d = Hashtbl.create 8 in
          Hashtbl.add dir comp (Dir d);
          walk d rest)
    in
    (match walk t.root (List.rev rev_dirs) with
    | Error e -> Error e
    | Ok dir ->
      if Hashtbl.mem dir base then Error (base ^ ": exists")
      else begin
        Hashtbl.add dir base (Dir (Hashtbl.create 8));
        Ok ()
      end)

let make_extents ~extent_size ~size =
  let rec go off acc =
    if Int64.compare off size >= 0 then List.rev acc
    else
      let len = min extent_size (Int64.sub size off) in
      go (Int64.add off len) ({ e_off = off; e_len = len; e_sel = -1; e_key = None } :: acc)
  in
  go 0L []

let add_file t path ~size =
  if Int64.compare size 0L < 0 then Error "negative size"
  else
    match parent_of t path with
    | Error e -> Error e
    | Ok (dir, base) ->
      if Hashtbl.mem dir base then Error (base ^ ": exists")
      else begin
        let file = { size; extents = make_extents ~extent_size:t.extent_size ~size } in
        Hashtbl.add dir base (File file);
        Ok file
      end

let find_file t path =
  match lookup t path with
  | Some (File f) -> Ok f
  | Some (Dir _) -> Error (path ^ ": is a directory")
  | None -> Error (path ^ ": no such file")

let unlink t path =
  match parent_of t path with
  | Error e -> Error e
  | Ok (dir, base) -> (
    match Hashtbl.find_opt dir base with
    | None -> Error (base ^ ": no such entry")
    | Some (Dir d) when Hashtbl.length d > 0 -> Error (base ^ ": directory not empty")
    | Some (Dir _ | File _) ->
      Hashtbl.remove dir base;
      Ok ())

let list_dir t path =
  match lookup t path with
  | Some (Dir d) -> Ok (Hashtbl.fold (fun name _ acc -> name :: acc) d [] |> List.sort String.compare)
  | Some (File _) -> Error (path ^ ": not a directory")
  | None -> Error (path ^ ": no such directory")

let extent_for file ~pos =
  List.find_opt
    (fun e -> Int64.compare e.e_off pos <= 0 && Int64.compare pos (Int64.add e.e_off e.e_len) < 0)
    file.extents

let append_extent t file =
  let last_end =
    List.fold_left (fun acc e -> max acc (Int64.add e.e_off e.e_len)) 0L file.extents
  in
  let e = { e_off = last_end; e_len = t.extent_size; e_sel = -1; e_key = None } in
  file.extents <- file.extents @ [ e ];
  e

let rec count_dir dir =
  Hashtbl.fold
    (fun _ node acc -> match node with File _ -> acc + 1 | Dir d -> acc + count_dir d)
    dir 0

let file_count t = count_dir t.root

let iter_nodes t f =
  let rec walk prefix dir =
    Hashtbl.iter
      (fun name node ->
        let path = prefix ^ "/" ^ name in
        f path node;
        match node with Dir d -> walk path d | File _ -> ())
      dir
  in
  walk "" t.root
