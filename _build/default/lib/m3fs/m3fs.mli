(** m3fs: the in-memory filesystem service (paper §2.2, §5.3.1).

    The service runs as a VPE on its own PE. Metadata operations (open,
    stat, mkdir, unlink, list, close) are IPC to the service PE — the
    kernel is not involved. Data access works through byte-granular
    memory capabilities: a client obtains, via the kernel, a capability
    covering one extent of the file; when it runs off the end it obtains
    the next one; on close the service revokes everything it handed out
    for that file. Appending beyond the last extent makes the service
    allocate a fresh extent capability (a kernel capability operation),
    exactly the pattern that loads the capability subsystem in the
    paper's application benchmarks. *)

type config = {
  extent_size : int64;       (** range covered by one handed-out capability *)
  ipc_bytes : int;           (** metadata request wire size *)
  cost_open : int64;         (** service-side processing cost, cycles *)
  cost_stat : int64;
  cost_dir : int64;          (** mkdir / unlink / list *)
  cost_close : int64;
  cost_grant : int64;        (** deciding an obtain upcall *)
  cost_session : int64;      (** accepting a new session *)
  mem_bytes_per_cycle : int; (** client-side data access bandwidth model *)
  mem_slowdown : float;      (** memory-system contention factor (>= 1) *)
  async_revoke : bool;
      (** reply to close before the revokes complete (they still run,
          off the client's critical path); [false] makes close block
          until every handed-out capability is revoked *)
}

val default_config : config

type stats = {
  mutable meta_ops : int;    (** IPC metadata operations served *)
  mutable grants : int;      (** extent capabilities granted *)
  mutable appends : int;     (** extents allocated for appends *)
  mutable closes : int;
  mutable revoke_calls : int; (** revoke syscalls issued on close *)
}

type t

(** [create sys ~kernel ~name ~files ()] spawns the service VPE on a
    free PE of [kernel]'s group, registers and announces the service,
    and builds the filesystem image: [files] lists [(path, size)] —
    intermediate directories are created automatically. Runs the engine
    to complete registration; call at boot time. *)
val create :
  ?config:config -> Semper_kernel.System.t -> kernel:int -> name:string -> files:(string * int64) list -> unit -> t

val name : t -> string
val vpe : t -> Semper_kernel.Vpe.t
val server : t -> Semper_sim.Server.t
val config : t -> config
val stats : t -> stats
val image : t -> Fs_image.t

(** Metadata IPC from a client PE (used by [Client]). *)
type meta_req =
  | M_open of { ident : int; path : string; write : bool; create : bool }
  | M_stat of string
  | M_list of string
  | M_mkdir of string
  | M_unlink of string
  | M_close of { ident : int; fd : int; size : int64 }
      (** [size]: the client's file size at close — committed to the
          image, since data writes bypass the service entirely *)

type meta_resp =
  | M_ok
  | M_fd of { fd : int; size : int64 }
  | M_stat_r of { size : int64; is_dir : bool }
  | M_entries of string list
  | M_err of string

(** [rpc t ~client_pe req k]: request message to the service PE,
    service processing (queued on the service's server), reply message
    back, then [k resp] at the client. *)
val rpc : t -> client_pe:int -> meta_req -> (meta_resp -> unit) -> unit
