module P = Semper_kernel.Protocol
module System = Semper_kernel.System
module Kernel = Semper_kernel.Kernel
module Vpe = Semper_kernel.Vpe
module Cap = Semper_caps.Cap
module Perms = Semper_caps.Perms
module Capspace = Semper_caps.Capspace
module Engine = Semper_sim.Engine
module Server = Semper_sim.Server
module Fabric = Semper_noc.Fabric

let src = Logs.Src.create "semper.m3fs" ~doc:"m3fs service"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  extent_size : int64;
  ipc_bytes : int;
  cost_open : int64;
  cost_stat : int64;
  cost_dir : int64;
  cost_close : int64;
  cost_grant : int64;
  cost_session : int64;
  mem_bytes_per_cycle : int;
  mem_slowdown : float;
  async_revoke : bool;
}

let default_config =
  {
    extent_size = Int64.of_int (256 * 1024);
    ipc_bytes = 64;
    cost_open = 2500L;
    cost_stat = 1400L;
    cost_dir = 2000L;
    cost_close = 1200L;
    cost_grant = 1500L;
    cost_session = 2000L;
    mem_bytes_per_cycle = 8;
    mem_slowdown = 1.0;
    async_revoke = true;
  }

type stats = {
  mutable meta_ops : int;
  mutable grants : int;
  mutable appends : int;
  mutable closes : int;
  mutable revoke_calls : int;
}

type open_file = {
  of_path : string;
  of_file : Fs_image.file;
  of_write : bool;
  mutable of_granted : P.selector list;  (** service selectors of granted extents *)
}

type session = { s_ident : int; s_client : int; s_opens : (int, open_file) Hashtbl.t }

type t = {
  sys : System.t;
  cfg : config;
  name : string;
  vpe : Vpe.t;
  server : Server.t;
  image : Fs_image.t;
  sessions : (int, session) Hashtbl.t;
  stats : stats;
  mutable next_ident : int;
  mutable next_fd : int;
  mutable next_addr : int64;  (** backing-store address allocator *)
  (* The service VPE, like any VPE, has one syscall in flight at a
     time; concurrent handler work serialises its kernel calls here. *)
  sys_queue : (P.syscall * (P.reply -> unit)) Queue.t;
  mutable sys_busy : bool;
}

let name t = t.name
let vpe t = t.vpe
let server t = t.server
let config t = t.cfg
let stats t = t.stats
let image t = t.image

(* ------------------------------------------------------------------ *)
(* Serialised service syscalls                                          *)

let rec pump_syscalls t =
  if (not t.sys_busy) && not (Queue.is_empty t.sys_queue) then begin
    let call, k = Queue.pop t.sys_queue in
    t.sys_busy <- true;
    System.syscall t.sys t.vpe call (fun r ->
        t.sys_busy <- false;
        k r;
        pump_syscalls t)
  end

let service_syscall t call k =
  Queue.push (call, k) t.sys_queue;
  pump_syscalls t

(* ------------------------------------------------------------------ *)
(* Extent capability management                                         *)

(* Attach a boot-time capability to an extent, bypassing the (not yet
   running) syscall path. *)
let attach_extent_boot t kernel (e : Fs_image.extent) =
  let kind =
    Cap.Mem_cap { host_pe = t.vpe.Vpe.pe; addr = t.next_addr; size = e.Fs_image.e_len; perms = Perms.rw }
  in
  t.next_addr <- Int64.add t.next_addr e.Fs_image.e_len;
  let sel, key = Kernel.install_new_cap kernel ~owner:t.vpe ~kind () in
  e.Fs_image.e_sel <- sel;
  e.Fs_image.e_key <- Some key

(* Attach a capability to a fresh append extent at run time: a real
   alloc_mem syscall, so the kernel is charged and the operation counts. *)
let attach_extent_runtime t (e : Fs_image.extent) k =
  service_syscall t (P.Sys_alloc_mem { size = e.Fs_image.e_len; perms = Perms.rw }) (fun r ->
      match r with
      | P.R_sel sel ->
        e.Fs_image.e_sel <- sel;
        e.Fs_image.e_key <- Capspace.find t.vpe.Vpe.capspace sel;
        t.stats.appends <- t.stats.appends + 1;
        k (Ok ())
      | P.R_ok | P.R_vpe _ | P.R_sess _ -> k (Error "unexpected alloc reply")
      | P.R_err e -> k (Error (P.error_to_string e)))

(* ------------------------------------------------------------------ *)
(* Kernel upcalls (session opens, obtains, delegates)                   *)

let grant_extent t (session : session) ~fd ~pos ~write k =
  match Hashtbl.find_opt session.s_opens fd with
  | None -> k (P.Srs_reject P.E_no_such_session)
  | Some opened ->
    let file = opened.of_file in
    if write && not opened.of_write then k (P.Srs_reject P.E_denied)
    else begin
      let deliver (e : Fs_image.extent) =
        match e.Fs_image.e_key with
        | None -> k (P.Srs_reject P.E_no_such_cap)
        | Some key ->
          if not (List.mem e.Fs_image.e_sel opened.of_granted) then
            opened.of_granted <- e.Fs_image.e_sel :: opened.of_granted;
          t.stats.grants <- t.stats.grants + 1;
          let perms = if write then Perms.rw else Perms.r in
          let kind =
            Cap.Mem_cap { host_pe = t.vpe.Vpe.pe; addr = 0L; size = e.Fs_image.e_len; perms }
          in
          k (P.Srs_grant { parent = key; kind })
      in
      match Fs_image.extent_for file ~pos:(Int64.of_int pos) with
      | Some e -> deliver e
      | None ->
        if not write then k (P.Srs_reject P.E_invalid)
        else begin
          (* Append beyond the last extent: allocate backing store. *)
          let e = Fs_image.append_extent t.image file in
          attach_extent_runtime t e (fun r ->
              match r with
              | Ok () -> deliver e
              | Error _ -> k (P.Srs_reject P.E_invalid))
        end
    end

let handle_upcall t (req : P.service_request) k =
  match req with
  | P.Srq_open_session { client_vpe } ->
    Server.submit t.server ~cost:t.cfg.cost_session (fun () ->
        let ident = t.next_ident in
        t.next_ident <- ident + 1;
        Hashtbl.add t.sessions ident
          { s_ident = ident; s_client = client_vpe; s_opens = Hashtbl.create 8 };
        k (P.Srs_session { ident }))
  | P.Srq_obtain { ident; args } ->
    Server.submit t.server ~cost:t.cfg.cost_grant (fun () ->
        match Hashtbl.find_opt t.sessions ident with
        | None -> k (P.Srs_reject P.E_no_such_session)
        | Some session -> (
          match args with
          | [ fd; pos; write ] -> grant_extent t session ~fd ~pos ~write:(write <> 0) k
          | [] | [ _ ] | [ _; _ ] | _ :: _ :: _ :: _ -> k (P.Srs_reject P.E_invalid)))
  | P.Srq_delegate { ident; args = _; kind = _ } ->
    Server.submit t.server ~cost:t.cfg.cost_grant (fun () ->
        if Hashtbl.mem t.sessions ident then k P.Srs_accept
        else k (P.Srs_reject P.E_no_such_session))

(* ------------------------------------------------------------------ *)
(* Metadata IPC                                                         *)

type meta_req =
  | M_open of { ident : int; path : string; write : bool; create : bool }
  | M_stat of string
  | M_list of string
  | M_mkdir of string
  | M_unlink of string
  | M_close of { ident : int; fd : int; size : int64 }

type meta_resp =
  | M_ok
  | M_fd of { fd : int; size : int64 }
  | M_stat_r of { size : int64; is_dir : bool }
  | M_entries of string list
  | M_err of string

let meta_cost t = function
  | M_open _ -> t.cfg.cost_open
  | M_stat _ -> t.cfg.cost_stat
  | M_list _ | M_mkdir _ | M_unlink _ -> t.cfg.cost_dir
  | M_close _ -> t.cfg.cost_close

(* Close: revoke the children of every extent capability granted during
   this open — "when the file is closed again, the memory capabilities
   are revoked" (paper §2.2). *)
let close_file t (opened : open_file) k =
  let rec revoke_all done_ = function
    | [] -> done_ (Ok ())
    | sel :: rest ->
      t.stats.revoke_calls <- t.stats.revoke_calls + 1;
      service_syscall t (P.Sys_revoke { sel; own = false }) (fun r ->
          match r with
          | P.R_ok | P.R_sel _ | P.R_vpe _ | P.R_sess _ -> revoke_all done_ rest
          | P.R_err P.E_no_such_cap -> revoke_all done_ rest (* already gone *)
          | P.R_err e -> done_ (Error (P.error_to_string e)))
  in
  if t.cfg.async_revoke then begin
    (* Acknowledge the close now; the revokes drain through the service
       VPE's syscall queue off the client's critical path. *)
    revoke_all (fun _ -> ()) opened.of_granted;
    k M_ok
  end
  else
    revoke_all
      (fun r -> match r with Ok () -> k M_ok | Error e -> k (M_err e))
      opened.of_granted

let handle_meta t req k =
  t.stats.meta_ops <- t.stats.meta_ops + 1;
  match req with
  | M_open { ident; path; write; create } -> (
    match Hashtbl.find_opt t.sessions ident with
    | None -> k (M_err "no such session")
    | Some session -> (
      let file =
        match Fs_image.find_file t.image path with
        | Ok f -> Ok f
        | Error _ when create && write -> Fs_image.add_file t.image path ~size:0L
        | Error e -> Error e
      in
      match file with
      | Error e -> k (M_err e)
      | Ok file ->
        let fd = t.next_fd in
        t.next_fd <- fd + 1;
        Hashtbl.add session.s_opens fd { of_path = path; of_file = file; of_write = write; of_granted = [] };
        k (M_fd { fd; size = file.Fs_image.size })))
  | M_stat path -> (
    match Fs_image.lookup t.image path with
    | Some (Fs_image.File f) -> k (M_stat_r { size = f.Fs_image.size; is_dir = false })
    | Some (Fs_image.Dir _) -> k (M_stat_r { size = 0L; is_dir = true })
    | None -> k (M_err "no such entry"))
  | M_list path -> (
    match Fs_image.list_dir t.image path with
    | Ok entries -> k (M_entries entries)
    | Error e -> k (M_err e))
  | M_mkdir path -> (
    match Fs_image.mkdir t.image path with
    | Ok () -> k M_ok
    | Error e -> k (M_err e))
  | M_unlink path -> (
    match Fs_image.unlink t.image path with
    | Ok () -> k M_ok
    | Error e -> k (M_err e))
  | M_close { ident; fd; size } -> (
    match Hashtbl.find_opt t.sessions ident with
    | None -> k (M_err "no such session")
    | Some session -> (
      match Hashtbl.find_opt session.s_opens fd with
      | None -> k (M_err "bad fd")
      | Some opened ->
        Hashtbl.remove session.s_opens fd;
        t.stats.closes <- t.stats.closes + 1;
        (* Commit the size: data writes went through memory
           capabilities, so the image only learns the new length here. *)
        if opened.of_write && Int64.compare size opened.of_file.Fs_image.size > 0 then
          opened.of_file.Fs_image.size <- size;
        close_file t opened k))

let rpc t ~client_pe req k =
  let fabric = System.fabric t.sys in
  Fabric.send fabric ~src:client_pe ~dst:t.vpe.Vpe.pe ~bytes:t.cfg.ipc_bytes (fun () ->
      Server.submit t.server ~cost:(meta_cost t req) (fun () ->
          handle_meta t req (fun resp ->
              Fabric.send fabric ~src:t.vpe.Vpe.pe ~dst:client_pe ~bytes:t.cfg.ipc_bytes (fun () ->
                  k resp))))

(* ------------------------------------------------------------------ *)
(* Boot                                                                 *)

let ensure_dirs t path =
  let components = Fs_image.split_path path in
  let rec go prefix = function
    | [] | [ _ ] -> ()
    | dir :: rest ->
      let p = prefix ^ "/" ^ dir in
      (match Fs_image.lookup t.image p with
      | Some _ -> ()
      | None -> (
        match Fs_image.mkdir t.image p with
        | Ok () -> ()
        | Error e -> invalid_arg ("M3fs.create: " ^ e)));
      go p rest
  in
  go "" components

let create ?(config = default_config) sys ~kernel:kid ~name ~files () =
  let vpe = System.spawn_vpe sys ~kernel:kid in
  let kernel = System.kernel sys kid in
  let image = Fs_image.create ~extent_size:config.extent_size in
  let t =
    {
      sys;
      cfg = config;
      name;
      vpe;
      server = Server.create (System.engine sys) ~name:("m3fs:" ^ name);
      image;
      sessions = Hashtbl.create 32;
      stats = { meta_ops = 0; grants = 0; appends = 0; closes = 0; revoke_calls = 0 };
      next_ident = 0;
      next_fd = 3;
      next_addr = 0x1000_0000L;
      sys_queue = Queue.create ();
      sys_busy = false;
    }
  in
  Kernel.register_service_handler kernel ~name (fun req k -> handle_upcall t req k);
  (match System.syscall_sync sys vpe (P.Sys_create_srv { name }) with
  | P.R_sel _ -> ()
  | r -> invalid_arg (Format.asprintf "M3fs.create: create_srv failed: %a" P.pp_reply r));
  List.iter
    (fun (path, size) ->
      ensure_dirs t path;
      match Fs_image.add_file image path ~size with
      | Ok file -> List.iter (attach_extent_boot t kernel) file.Fs_image.extents
      | Error e -> invalid_arg ("M3fs.create: " ^ e))
    files;
  (* Let the service announcement reach all kernels before clients ask. *)
  ignore (System.run sys);
  t
