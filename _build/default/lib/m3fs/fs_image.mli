(** In-memory filesystem image.

    Files are sequences of fixed-size extents; each extent is backed by
    a service-owned memory capability (attached by the service at boot
    or on append). Clients never see extents directly — they obtain
    memory capabilities covering them through the kernel. *)

type extent = {
  e_off : int64;  (** offset of this extent within the file *)
  e_len : int64;
  mutable e_sel : int;  (** service-side capability selector (-1 = unattached) *)
  mutable e_key : Semper_ddl.Key.t option;
}

type file = { mutable size : int64; mutable extents : extent list  (** ascending by offset *) }

type node = File of file | Dir of (string, node) Hashtbl.t

type t

(** [create ~extent_size] is an empty image. Extent size must be
    positive; it also bounds the range of each handed-out capability. *)
val create : extent_size:int64 -> t

val extent_size : t -> int64

(** Normalise a path into components; rejects empty components. *)
val split_path : string -> string list

(** [mkdir t path] creates a directory, including any missing
    intermediate directories (mkdir -p). *)
val mkdir : t -> string -> (unit, string) result

(** [add_file t path ~size] creates a file with extents covering
    [size] bytes (capabilities unattached). Overwrites nothing. *)
val add_file : t -> string -> size:int64 -> (file, string) result

val lookup : t -> string -> node option
val find_file : t -> string -> (file, string) result

(** [unlink t path] removes a file or empty directory. *)
val unlink : t -> string -> (unit, string) result

(** Entries of a directory. *)
val list_dir : t -> string -> (string list, string) result

(** [extent_for f ~pos] is the extent covering byte [pos], if any. *)
val extent_for : file -> pos:int64 -> extent option

(** [append_extent t f] grows [f] by one (empty) extent and returns it;
    the caller attaches a capability and then grows [f.size] as data is
    written. *)
val append_extent : t -> file -> extent

(** Total number of files (recursive). *)
val file_count : t -> int

(** Walk every node with its path, depth-first. *)
val iter_nodes : t -> (string -> node -> unit) -> unit
