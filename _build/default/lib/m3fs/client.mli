(** Client-side m3fs library (the role of libm3 in the paper).

    Wraps the session/capability protocol: metadata operations go to the
    service by IPC; data access obtains extent capabilities through the
    kernel on demand and then charges uncontended memory-access time on
    the client PE — mirroring the paper's methodology (§5.3.1), which
    excludes memory contention to put maximum pressure on the capability
    system. All operations are asynchronous; continuations run at the
    simulated completion time. *)

type t

val vpe : t -> Semper_kernel.Vpe.t
val ident : t -> int

(** Kernel capability operations this client triggered directly
    (session opens and extent obtains). *)
val cap_ops : t -> int

(** [connect sys fs ~vpe k] opens a session with the service. *)
val connect :
  Semper_kernel.System.t -> M3fs.t -> vpe:Semper_kernel.Vpe.t -> ((t, string) result -> unit) -> unit

val stat : t -> string -> ((unit, string) result -> unit) -> unit
val list : t -> string -> ((string list, string) result -> unit) -> unit
val mkdir : t -> string -> ((unit, string) result -> unit) -> unit
val unlink : t -> string -> ((unit, string) result -> unit) -> unit

(** [open_ t path ~write ~create k] yields a file descriptor. *)
val open_ : t -> string -> write:bool -> create:bool -> ((int, string) result -> unit) -> unit

(** [read t ~fd ~bytes k] reads up to [bytes] from the current
    position; yields bytes actually read (0 at EOF). Obtains extent
    capabilities as the position crosses extent boundaries. *)
val read : t -> fd:int -> bytes:int -> ((int, string) result -> unit) -> unit

(** [write t ~fd ~bytes k] writes at the current position, extending
    the file (and its backing extents) as needed. *)
val write : t -> fd:int -> bytes:int -> ((unit, string) result -> unit) -> unit

(** Reposition within the file. *)
val seek : t -> fd:int -> pos:int64 -> (unit, string) result

(** Current size of an open file, as this client sees it. *)
val file_size : t -> fd:int -> int64 option

(** [close t ~fd k]: the service revokes the extent capabilities handed
    out for this descriptor before the reply arrives. *)
val close : t -> fd:int -> ((unit, string) result -> unit) -> unit
