(** Cross-kernel capability-tree audit.

    [Kernel.check_invariants] checks each mapping database in
    isolation; cross-kernel links (a parent on one kernel, its child on
    another) are out of its reach. This module reconstructs the global
    capability forest across every kernel of a system and verifies the
    distributed invariants the SemperOS protocols must maintain:

    - every child link resolves to a live capability whose [parent]
      points back (bidirectional cross-kernel consistency);
    - every parent link is matched by a child entry at the parent;
    - capabilities are hosted at the kernel that manages their owner
      VPE (the paper's single-owner rule, §3.4);
    - the forest is acyclic and every capability is reachable from a
      root (no disconnected garbage);
    - no capability is marked for revocation once the system is idle.

    Used by tests and by the randomised protocol soak. *)

type report = {
  capabilities : int;   (** total live capabilities across all kernels *)
  roots : int;          (** capabilities without a parent *)
  max_depth : int;      (** deepest chain in the forest *)
  spanning_links : int; (** parent/child links crossing kernels *)
  errors : string list; (** violations, empty when healthy *)
}

val pp_report : Format.formatter -> report -> unit

(** Audit an idle system. Call only when the engine has drained —
    in-flight operations legitimately hold half-linked state. *)
val run : Semper_kernel.System.t -> report

(** [check sys] raises [Failure] with the violations if any. *)
val check : Semper_kernel.System.t -> unit
