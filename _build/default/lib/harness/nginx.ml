module System = Semper_kernel.System
module Cost = Semper_kernel.Cost
module M3fs = Semper_m3fs.M3fs
module Client = Semper_m3fs.Client
module Workloads = Semper_trace.Workloads
module Trace = Semper_trace.Trace
module Engine = Semper_sim.Engine

type config = {
  kernels : int;
  services : int;
  servers : int;
  duration : int64;
  mode : Cost.mode;
  mem_contention : float;
}

let config ?(mode = Cost.Semperos) ?(duration = 4_000_000L)
    ?(mem_contention = Experiment.default_mem_contention) ~kernels ~services ~servers () =
  if kernels <= 0 || services <= 0 || servers <= 0 then invalid_arg "Nginx.config: non-positive size";
  { kernels; services; servers; duration; mode; mem_contention }

type outcome = { cfg : config; requests : int; requests_per_s : float; errors : int }

let service_of_server cfg ~server =
  Experiment.service_of_instance ~kernels:cfg.kernels ~services:cfg.services ~instance:server

let run cfg =
  let sys =
    let per_group =
      ((cfg.servers + cfg.kernels - 1) / cfg.kernels)
      + ((cfg.services + cfg.kernels - 1) / cfg.kernels)
    in
    System.create (System.config ~kernels:cfg.kernels ~user_pes_per_kernel:per_group ~mode:cfg.mode ())
  in
  let files_of_service = Array.make cfg.services [] in
  let req = Workloads.nginx_request in
  let prefixed = Array.init cfg.servers (fun i -> Trace.with_prefix (Printf.sprintf "/s%d" i) req) in
  Array.iteri
    (fun i trace ->
      let s = service_of_server cfg ~server:i in
      files_of_service.(s) <- List.rev_append trace.Trace.files files_of_service.(s))
    prefixed;
  let slowdown = 1.0 +. (cfg.mem_contention *. float_of_int cfg.servers /. 640.0) in
  let services =
    Array.init cfg.services (fun s ->
        M3fs.create
          ~config:{ Workloads.nginx_fs_config with M3fs.mem_slowdown = slowdown }
          sys ~kernel:(s mod cfg.kernels)
          ~name:(Printf.sprintf "m3fs%d" s)
          ~files:(List.rev files_of_service.(s))
          ())
  in
  let requests = ref 0 in
  let errors = ref 0 in
  let engine = System.engine sys in
  let t_end = Int64.add (System.now sys) cfg.duration in
  let start_server i =
    let vpe = System.spawn_vpe sys ~kernel:(i mod cfg.kernels) in
    let fs = services.(service_of_server cfg ~server:i) in
    let doc = Printf.sprintf "/s%d/www/index.html" i in
    Client.connect sys fs ~vpe (fun conn ->
        match conn with
        | Error _ -> incr errors
        | Ok client ->
          let rec next_request () =
            if Int64.compare (Engine.now engine) t_end >= 0 then ()
            else
              Client.stat client doc (fun _ ->
                  Client.open_ client doc ~write:false ~create:false (fun r ->
                      match r with
                      | Error _ ->
                        incr errors;
                        next_request ()
                      | Ok fd ->
                        Client.read client ~fd ~bytes:(8 * 1024) (fun r ->
                            (match r with Ok _ -> () | Error _ -> incr errors);
                            let think = Int64.of_float (150_000.0 *. slowdown) in
                            Engine.after engine think (fun () ->
                                Client.close client ~fd (fun r ->
                                    (match r with
                                    | Ok () ->
                                      if Int64.compare (Engine.now engine) t_end < 0 then incr requests
                                    | Error _ -> incr errors);
                                    next_request ())))))
          in
          next_request ())
  in
  for i = 0 to cfg.servers - 1 do
    start_server i
  done;
  ignore (System.run sys);
  let seconds = Int64.to_float cfg.duration /. Experiment.clock_hz in
  { cfg; requests = !requests; requests_per_s = float_of_int !requests /. seconds; errors = !errors }
