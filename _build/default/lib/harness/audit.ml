module System = Semper_kernel.System
module Kernel = Semper_kernel.Kernel
module Key = Semper_ddl.Key
module Membership = Semper_ddl.Membership
module Cap = Semper_caps.Cap
module Mapdb = Semper_caps.Mapdb

type report = {
  capabilities : int;
  roots : int;
  max_depth : int;
  spanning_links : int;
  errors : string list;
}

let pp_report ppf r =
  Format.fprintf ppf "audit{caps=%d roots=%d depth=%d spanning=%d errors=%d}" r.capabilities
    r.roots r.max_depth r.spanning_links (List.length r.errors)

let run sys =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* Per-kernel invariants first. *)
  List.iter (fun e -> errors := e :: !errors) (System.check_invariants sys);
  (* Collect the global capability set. *)
  let global : Cap.t Key.Table.t = Key.Table.create 256 in
  let home : int Key.Table.t = Key.Table.create 256 in
  List.iter
    (fun kernel ->
      Mapdb.iter
        (fun cap ->
          if Key.Table.mem global cap.Cap.key then
            err "capability %s present in two mapping databases" (Key.to_string cap.Cap.key)
          else begin
            Key.Table.add global cap.Cap.key cap;
            Key.Table.add home cap.Cap.key (Kernel.id kernel)
          end)
        (Kernel.mapdb kernel))
    (System.kernels sys);
  let membership = System.membership sys in
  let spanning = ref 0 in
  (* Link consistency, in both directions, across kernels. *)
  Key.Table.iter
    (fun key cap ->
      let my_home = Key.Table.find home key in
      (* The DDL must route to the hosting kernel. *)
      (match Membership.kernel_of_key membership key with
      | k when k = my_home -> ()
      | k -> err "capability %s hosted at kernel %d but DDL routes to %d" (Key.to_string key) my_home k
      | exception Not_found -> err "capability %s has an unroutable key" (Key.to_string key));
      List.iter
        (fun child_key ->
          match Key.Table.find_opt global child_key with
          | None -> err "%s lists dead child %s" (Key.to_string key) (Key.to_string child_key)
          | Some child -> (
            if Key.Table.find home child_key <> my_home then incr spanning;
            match child.Cap.parent with
            | Some p when Key.equal p key -> ()
            | Some p ->
              err "child %s of %s claims parent %s" (Key.to_string child_key) (Key.to_string key)
                (Key.to_string p)
            | None -> err "child %s of %s has no parent" (Key.to_string child_key) (Key.to_string key)))
        cap.Cap.children;
      match cap.Cap.parent with
      | None -> ()
      | Some parent_key -> (
        match Key.Table.find_opt global parent_key with
        | None -> err "%s has dead parent %s" (Key.to_string key) (Key.to_string parent_key)
        | Some parent ->
          if not (Cap.has_child parent key) then
            err "parent %s does not list child %s" (Key.to_string parent_key) (Key.to_string key)))
    global;
  (* Reachability and acyclicity: walk down from every root. *)
  let visited = Key.Table.create 256 in
  let max_depth = ref 0 in
  let roots = ref 0 in
  let rec walk depth key =
    if depth > Key.Table.length global then err "cycle through %s" (Key.to_string key)
    else begin
      if depth > !max_depth then max_depth := depth;
      if Key.Table.mem visited key then
        err "capability %s reached twice (diamond or cycle)" (Key.to_string key)
      else begin
        Key.Table.add visited key ();
        match Key.Table.find_opt global key with
        | None -> ()
        | Some cap -> List.iter (walk (depth + 1)) cap.Cap.children
      end
    end
  in
  Key.Table.iter
    (fun key cap ->
      if cap.Cap.parent = None then begin
        incr roots;
        walk 1 key
      end)
    global;
  Key.Table.iter
    (fun key _ ->
      if not (Key.Table.mem visited key) then
        err "capability %s unreachable from any root" (Key.to_string key))
    global;
  {
    capabilities = Key.Table.length global;
    roots = !roots;
    max_depth = !max_depth;
    spanning_links = !spanning;
    errors = List.rev !errors;
  }

let check sys =
  match (run sys).errors with
  | [] -> ()
  | errs ->
    failwith (Printf.sprintf "Audit.check: %d violations: %s" (List.length errs) (String.concat "; " errs))
