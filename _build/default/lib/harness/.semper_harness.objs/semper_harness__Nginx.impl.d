lib/harness/nginx.ml: Array Experiment Int64 List Printf Semper_kernel Semper_m3fs Semper_sim Semper_trace
