lib/harness/microbench.ml: Format Int64 Semper_caps Semper_kernel
