lib/harness/audit.ml: Format List Printf Semper_caps Semper_ddl Semper_kernel String
