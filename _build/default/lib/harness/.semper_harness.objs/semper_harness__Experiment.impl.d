lib/harness/experiment.ml: Array Audit Int64 List Printf Semper_kernel Semper_m3fs Semper_sim Semper_trace String
