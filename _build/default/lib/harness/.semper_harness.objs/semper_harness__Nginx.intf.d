lib/harness/nginx.mli: Semper_kernel
