lib/harness/audit.mli: Format Semper_kernel
