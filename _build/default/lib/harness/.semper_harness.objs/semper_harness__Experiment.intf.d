lib/harness/experiment.mli: Semper_kernel Semper_trace
