lib/harness/microbench.mli: Semper_kernel
