(** Nginx webserver benchmark (paper §5.3.3, Figure 10).

    Server processes run on separate PEs and are kept saturated by
    load-generator PEs (Apache-ab style); each request replays the
    static-file trace: stat, open, read, close — so every request costs
    one capability obtain and one revoke besides the service IPC. We
    measure completed requests per second over a fixed duration. *)

type config = {
  kernels : int;
  services : int;
  servers : int;       (** number of webserver processes *)
  duration : int64;    (** measurement window, cycles *)
  mode : Semper_kernel.Cost.mode;
  mem_contention : float;  (** see {!Experiment.config} *)
}

val config :
  ?mode:Semper_kernel.Cost.mode ->
  ?duration:int64 ->
  ?mem_contention:float ->
  kernels:int ->
  services:int ->
  servers:int ->
  unit ->
  config

type outcome = {
  cfg : config;
  requests : int;
  requests_per_s : float;  (** aggregate over all server processes *)
  errors : int;
}

val run : config -> outcome
