(** Access permissions carried by memory capabilities. *)

type t = { read : bool; write : bool; exec : bool }

val none : t
val r : t
val rw : t
val rx : t
val rwx : t

(** [subset a ~of_:b]: every right in [a] is also in [b]. Capability
    exchange may only narrow rights, never widen them. *)
val subset : t -> of_:t -> bool

(** Intersection of rights. *)
val inter : t -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
