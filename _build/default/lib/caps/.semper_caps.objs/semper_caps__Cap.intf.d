lib/caps/cap.mli: Format Perms Semper_ddl
