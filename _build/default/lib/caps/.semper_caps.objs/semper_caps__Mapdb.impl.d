lib/caps/mapdb.ml: Cap List Printf Semper_ddl
