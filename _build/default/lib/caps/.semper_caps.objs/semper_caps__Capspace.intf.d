lib/caps/capspace.mli: Semper_ddl
