lib/caps/perms.ml: Format
