lib/caps/cap.ml: Format List Perms Printf Semper_ddl
