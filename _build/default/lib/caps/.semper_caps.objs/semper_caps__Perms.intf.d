lib/caps/perms.mli: Format
