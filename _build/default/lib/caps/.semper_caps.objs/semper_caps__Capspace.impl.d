lib/caps/capspace.ml: Hashtbl Semper_ddl
