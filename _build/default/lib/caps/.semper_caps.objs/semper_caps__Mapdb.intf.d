lib/caps/mapdb.mli: Cap Semper_ddl
