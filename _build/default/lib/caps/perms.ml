type t = { read : bool; write : bool; exec : bool }

let none = { read = false; write = false; exec = false }
let r = { read = true; write = false; exec = false }
let rw = { read = true; write = true; exec = false }
let rx = { read = true; write = false; exec = true }
let rwx = { read = true; write = true; exec = true }

let implies a b = (not a) || b

let subset a ~of_ = implies a.read of_.read && implies a.write of_.write && implies a.exec of_.exec

let inter a b = { read = a.read && b.read; write = a.write && b.write; exec = a.exec && b.exec }

let equal a b = a = b

let to_string t =
  let c flag ch = if flag then ch else "-" in
  c t.read "r" ^ c t.write "w" ^ c t.exec "x"

let pp ppf t = Format.pp_print_string ppf (to_string t)
