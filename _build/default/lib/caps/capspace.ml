module Key = Semper_ddl.Key

type selector = int

type t = { slots : (selector, Key.t) Hashtbl.t; mutable next_hint : int }

let create () = { slots = Hashtbl.create 16; next_hint = 0 }

let insert t key =
  let rec free sel = if Hashtbl.mem t.slots sel then free (sel + 1) else sel in
  let sel = free t.next_hint in
  Hashtbl.add t.slots sel key;
  t.next_hint <- sel + 1;
  sel

let insert_at t sel key =
  if sel < 0 then invalid_arg "Capspace.insert_at: negative selector";
  if Hashtbl.mem t.slots sel then invalid_arg "Capspace.insert_at: selector taken";
  Hashtbl.add t.slots sel key

let find t sel = Hashtbl.find_opt t.slots sel

let selector_of t key =
  Hashtbl.fold
    (fun sel k acc -> match acc with Some _ -> acc | None -> if Key.equal k key then Some sel else None)
    t.slots None

let remove t sel =
  Hashtbl.remove t.slots sel;
  if sel < t.next_hint then t.next_hint <- sel

let remove_key t key =
  match selector_of t key with
  | Some sel -> remove t sel
  | None -> ()

let count t = Hashtbl.length t.slots
let iter f t = Hashtbl.iter f t.slots
