(** Discrete-event simulation engine.

    Time is measured in cycles (an [int64], matching the paper's 2 GHz
    clock). Events scheduled for the same cycle run in scheduling order,
    so a run is fully deterministic. *)

type t

(** Fresh engine at cycle 0. *)
val create : unit -> t

(** Current simulation time in cycles. *)
val now : t -> int64

(** [at t time f] schedules [f] to run at absolute cycle [time].
    Raises [Invalid_argument] if [time] is in the past. *)
val at : t -> int64 -> (unit -> unit) -> unit

(** [after t delay f] schedules [f] to run [delay] cycles from now.
    Raises [Invalid_argument] on a negative delay. *)
val after : t -> int64 -> (unit -> unit) -> unit

(** Run until the event queue is empty, or until the optional [until]
    cycle (events strictly after it stay queued). Returns the number of
    events processed by this call. *)
val run : ?until:int64 -> t -> int

(** Total events processed since creation. *)
val events_processed : t -> int

(** Events currently queued. *)
val pending : t -> int
