type job = Fixed of { cost : int64; k : unit -> unit } | Dynamic of (unit -> int64 * (unit -> unit))

type t = {
  engine : Engine.t;
  name : string;
  waiting : job Queue.t;
  mutable in_service : bool;
  mutable busy : int64;
  mutable completed : int;
  mutable max_queue : int;
}

let create engine ~name =
  {
    engine;
    name;
    waiting = Queue.create ();
    in_service = false;
    busy = 0L;
    completed = 0;
    max_queue = 0;
  }

let name t = t.name

let rec start_next t =
  if (not t.in_service) && not (Queue.is_empty t.waiting) then begin
    let job = Queue.pop t.waiting in
    t.in_service <- true;
    let cost, post =
      match job with
      | Fixed { cost; k } -> (cost, k)
      | Dynamic f ->
        let cost, post = f () in
        if Int64.compare cost 0L < 0 then invalid_arg "Server: negative dynamic cost";
        (cost, post)
    in
    Engine.after t.engine cost (fun () ->
        t.in_service <- false;
        t.busy <- Int64.add t.busy cost;
        t.completed <- t.completed + 1;
        post ();
        start_next t)
  end

let enqueue t job =
  Queue.push job t.waiting;
  if Queue.length t.waiting > t.max_queue then t.max_queue <- Queue.length t.waiting;
  start_next t

let submit t ~cost k =
  if Int64.compare cost 0L < 0 then invalid_arg "Server.submit: negative cost";
  enqueue t (Fixed { cost; k })

let submit_work t f = enqueue t (Dynamic f)

let busy_cycles t = t.busy
let completed t = t.completed
let queue_length t = Queue.length t.waiting
let max_queue_length t = t.max_queue

let utilisation t ~horizon =
  if Int64.compare horizon 0L <= 0 then 0.0
  else Int64.to_float t.busy /. Int64.to_float horizon
