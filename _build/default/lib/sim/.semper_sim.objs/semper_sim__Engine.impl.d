lib/sim/engine.ml: Int Int64 Semper_util
