lib/sim/engine.mli:
