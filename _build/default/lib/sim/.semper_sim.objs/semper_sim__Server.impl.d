lib/sim/server.ml: Engine Int64 Queue
