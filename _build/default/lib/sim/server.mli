(** Single-capacity FIFO server.

    Models a single-threaded processing element: a kernel PE or a
    service PE serves one job at a time; queued jobs wait. Utilisation
    and queueing statistics feed the parallel-efficiency analysis. *)

type t

val create : Engine.t -> name:string -> t

val name : t -> string

(** [submit t ~cost k] enqueues a job that occupies the server for
    [cost] cycles once it reaches the head of the queue, then runs [k].
    [cost] must be non-negative. *)
val submit : t -> cost:int64 -> (unit -> unit) -> unit

(** [submit_work t f] enqueues a job whose cost is only known once it
    runs: when the job reaches the head of the queue, [f ()] performs
    the state changes and returns [(cost, post)]; the server stays busy
    for [cost] cycles and then runs [post] (typically message sends).
    Used for operations whose cost depends on the state they traverse,
    e.g. marking a revocation subtree. *)
val submit_work : t -> (unit -> int64 * (unit -> unit)) -> unit

(** Cycles spent serving jobs so far. *)
val busy_cycles : t -> int64

(** Jobs completed so far. *)
val completed : t -> int

(** Jobs currently queued (excluding the one in service). *)
val queue_length : t -> int

(** High-water mark of the queue length. *)
val max_queue_length : t -> int

(** [utilisation t ~horizon] is busy cycles over [horizon] cycles. *)
val utilisation : t -> horizon:int64 -> float
