(** Kernel thread accounting (paper §4.2).

    SemperOS kernels use cooperative multithreading: an operation that
    must wait for another kernel suspends its thread at a preemption
    point. The pool is sized at startup as [V_group + K_max * M_inflight]
    (Equation 1) — one thread per VPE of the group (each VPE has at most
    one blocking syscall) plus one per possible in-flight request from
    every other kernel. The kernel never spawns threads on behalf of
    syscalls (DoS prevention); work arriving when no thread is free
    queues until one is released. Revocation requests from other
    kernels are processed without holding a thread across waits
    (Algorithm 1), and at most [2] dedicated revocation threads exist. *)

type t

(** [create ~vpes ~kernels] sizes the pool by Equation 1. *)
val create : vpes:int -> kernels:int -> t

val size : t -> int
val free : t -> int
val in_use : t -> int

(** High-water mark of threads in use. *)
val max_in_use : t -> int

(** [acquire t k] runs [k] immediately if a thread is free, otherwise
    queues it (FIFO) until [release]. *)
val acquire : t -> (unit -> unit) -> unit

(** Release one thread; runs the next queued acquisition if any. *)
val release : t -> unit

(** Queued acquisitions currently waiting. *)
val waiting : t -> int

(** Grow the pool when a VPE joins the group after boot. *)
val add_vpe_thread : t -> unit

(** Shrink the pool when a VPE leaves the group (migration). *)
val remove_vpe_thread : t -> unit
