type t = {
  mutable size : int;
  mutable in_use : int;
  mutable max_in_use : int;
  queue : (unit -> unit) Queue.t;
}

let create ~vpes ~kernels =
  if vpes < 0 || kernels < 0 then invalid_arg "Thread_pool.create: negative size";
  (* Equation 1: V_group + K_max * M_inflight. *)
  let size = vpes + (kernels * Cost.max_inflight) in
  { size = max size 1; in_use = 0; max_in_use = 0; queue = Queue.create () }

let size t = t.size
let free t = t.size - t.in_use
let in_use t = t.in_use
let max_in_use t = t.max_in_use
let waiting t = Queue.length t.queue

let acquire t k =
  if t.in_use < t.size then begin
    t.in_use <- t.in_use + 1;
    if t.in_use > t.max_in_use then t.max_in_use <- t.in_use;
    k ()
  end
  else Queue.push k t.queue

let release t =
  if t.in_use <= 0 then invalid_arg "Thread_pool.release: nothing to release";
  if Queue.is_empty t.queue then t.in_use <- t.in_use - 1
  else begin
    (* Hand the thread directly to the next waiter. *)
    let k = Queue.pop t.queue in
    k ()
  end

let add_vpe_thread t = t.size <- t.size + 1

let remove_vpe_thread t = if t.size > 1 then t.size <- t.size - 1
