lib/kernel/system.ml: Array Cost Hashtbl Int64 Kernel List Protocol Queue Semper_caps Semper_ddl Semper_dtu Semper_noc Semper_sim Vpe
