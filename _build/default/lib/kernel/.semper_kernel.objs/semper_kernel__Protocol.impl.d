lib/kernel/protocol.ml: Format Semper_caps Semper_ddl
