lib/kernel/system.mli: Cost Kernel Protocol Semper_ddl Semper_dtu Semper_noc Semper_sim Vpe
