lib/kernel/vpe.ml: Format Protocol Queue Semper_caps Semper_dtu
