lib/kernel/vpe.mli: Format Protocol Queue Semper_caps Semper_dtu
