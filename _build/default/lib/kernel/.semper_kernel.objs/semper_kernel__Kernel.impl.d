lib/kernel/kernel.ml: Cost Hashtbl Int64 List Logs Option Printf Protocol Queue Result Semper_caps Semper_ddl Semper_dtu Semper_noc Semper_sim Semper_util Thread_pool Vpe
