lib/kernel/kernel.mli: Cost Hashtbl Protocol Semper_caps Semper_ddl Semper_dtu Semper_noc Semper_sim Semper_util Thread_pool Vpe
