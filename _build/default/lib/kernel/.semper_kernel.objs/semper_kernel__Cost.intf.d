lib/kernel/cost.mli:
