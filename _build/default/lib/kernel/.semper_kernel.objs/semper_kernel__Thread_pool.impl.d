lib/kernel/thread_pool.ml: Cost Queue
