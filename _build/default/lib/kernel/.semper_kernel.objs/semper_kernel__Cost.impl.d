lib/kernel/cost.ml: Int64
