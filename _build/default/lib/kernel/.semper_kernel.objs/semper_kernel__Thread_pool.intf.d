lib/kernel/thread_pool.mli:
