lib/kernel/protocol.mli: Format Semper_caps Semper_ddl
