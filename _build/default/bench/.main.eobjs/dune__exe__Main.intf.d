bench/main.mli:
