bench/experiments.ml: Cost Experiment Int64 List Nginx_bench Perms Printf Protocol Semper_harness Semperos System Table Vpe Workloads
