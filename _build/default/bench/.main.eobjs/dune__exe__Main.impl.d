bench/main.ml: Analyze Array Bechamel Benchmark Experiments Hashtbl Instance List Measure Printf Semper_harness Semperos Staged Sys Test Time Toolkit
